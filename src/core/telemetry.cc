#include "core/telemetry.hh"

#include <cstdio>

#include "core/link_table.hh"
#include "core/load_buffer.hh"
#include "util/json.hh"

namespace clap
{

namespace
{

void
bump(std::vector<std::uint64_t> &hist, std::uint8_t value,
     std::uint8_t max)
{
    if (hist.size() < static_cast<std::size_t>(max) + 1)
        hist.resize(static_cast<std::size_t>(max) + 1, 0);
    ++hist[value];
}

void
appendHist(std::string &json, const char *name,
           const std::vector<std::uint64_t> &hist)
{
    json += "  \"";
    json += name;
    json += "\": [";
    for (std::size_t i = 0; i < hist.size(); ++i) {
        if (i != 0)
            json += ", ";
        json += std::to_string(hist[i]);
    }
    json += "]";
}

std::string
histLine(const std::vector<std::uint64_t> &hist)
{
    std::string line = "[";
    for (std::size_t i = 0; i < hist.size(); ++i) {
        if (i != 0)
            line += " ";
        line += std::to_string(hist[i]);
    }
    line += "]";
    return line;
}

double
pct(std::uint64_t part, std::uint64_t whole)
{
    return whole == 0
        ? 0.0
        : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

std::string
pctStr(std::uint64_t part, std::uint64_t whole)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f%%", pct(part, whole));
    return buf;
}

} // namespace

void
fillLoadBufferTelemetry(const LoadBuffer &lb, PredictorTelemetry &t,
                        bool withCap, bool withStride, bool withSelector)
{
    t.hasLoadBuffer = true;
    t.lbEntries = lb.numEntries();
    t.lbAllocations = lb.allocations();
    t.hasSelector = withSelector;
    for (std::size_t i = 0; i < lb.numEntries(); ++i) {
        if (!lb.validAt(i))
            continue;
        const LBEntry &entry = lb.coldAt(i);
        ++t.lbValid;
        if (withCap)
            bump(t.capConfHist, entry.capConf.value(),
                 entry.capConf.max());
        if (withStride)
            bump(t.strideConfHist, entry.strideConf.value(),
                 entry.strideConf.max());
        if (withSelector)
            ++t.selectorHist[entry.selector.value() & 3u];
    }
}

void
fillLinkTableTelemetry(const LinkTable &lt, PredictorTelemetry &t)
{
    t.hasLinkTable = true;
    t.ltEntries = lt.numEntries();
    t.ltLinkWrites = lt.linkWrites();
    t.ltLinkOverwrites = lt.linkOverwrites();
    t.ltPfRejected = lt.pfFiltered();
    for (std::size_t i = 0; i < lt.numEntries(); ++i) {
        if (lt.imageAt(i).valid)
            ++t.ltValid;
    }
}

std::string
telemetryJson(const PredictorTelemetry &t)
{
    std::string json = "{\n";
    json += "  \"predictor\": \"" + jsonEscape(t.predictor) + "\",\n";
    if (t.hasLoadBuffer) {
        json += "  \"lb\": {\"entries\": " + std::to_string(t.lbEntries) +
            ", \"valid\": " + std::to_string(t.lbValid) +
            ", \"allocations\": " + std::to_string(t.lbAllocations) +
            "},\n";
    }
    if (t.hasLinkTable) {
        json += "  \"lt\": {\"entries\": " + std::to_string(t.ltEntries) +
            ", \"valid\": " + std::to_string(t.ltValid) +
            ", \"link_writes\": " + std::to_string(t.ltLinkWrites) +
            ", \"link_overwrites\": " +
            std::to_string(t.ltLinkOverwrites) +
            ", \"pf_rejected\": " + std::to_string(t.ltPfRejected) +
            "},\n";
    }
    if (!t.capConfHist.empty()) {
        appendHist(json, "cap_conf_hist", t.capConfHist);
        json += ",\n";
    }
    if (!t.strideConfHist.empty()) {
        appendHist(json, "stride_conf_hist", t.strideConfHist);
        json += ",\n";
    }
    if (t.hasSelector) {
        json += "  \"selector_hist\": [";
        for (std::size_t i = 0; i < t.selectorHist.size(); ++i) {
            if (i != 0)
                json += ", ";
            json += std::to_string(t.selectorHist[i]);
        }
        json += "],\n";
    }
    if (t.hasCapGates) {
        const CapGateStats &g = t.capGates;
        json += "  \"cap_gates\": {\"formed\": " +
            std::to_string(g.formed) +
            ", \"speculated\": " + std::to_string(g.speculated) +
            ", \"conf_vetoes\": " + std::to_string(g.confVetoes) +
            ", \"tag_vetoes\": " + std::to_string(g.tagVetoes) +
            ", \"path_vetoes\": " + std::to_string(g.pathVetoes) +
            ", \"pipe_vetoes\": " + std::to_string(g.pipeVetoes) +
            "},\n";
    }
    if (t.hasStrideGates) {
        const StrideGateStats &g = t.strideGates;
        json += "  \"stride_gates\": {\"formed\": " +
            std::to_string(g.formed) +
            ", \"speculated\": " + std::to_string(g.speculated) +
            ", \"conf_vetoes\": " + std::to_string(g.confVetoes) +
            ", \"interval_vetoes\": " +
            std::to_string(g.intervalVetoes) +
            ", \"path_vetoes\": " + std::to_string(g.pathVetoes) +
            ", \"pipe_vetoes\": " + std::to_string(g.pipeVetoes) +
            "},\n";
    }
    json += "  \"end\": true\n}\n";
    return json;
}

std::string
telemetryText(const PredictorTelemetry &t)
{
    std::string out = "predictor: " + t.predictor + "\n";
    if (t.hasLoadBuffer) {
        out += "load buffer: " + std::to_string(t.lbValid) + "/" +
            std::to_string(t.lbEntries) + " valid (" +
            pctStr(t.lbValid, t.lbEntries) + " occupancy), " +
            std::to_string(t.lbAllocations) + " allocations\n";
    }
    if (t.hasLinkTable) {
        out += "link table: " + std::to_string(t.ltValid) + "/" +
            std::to_string(t.ltEntries) + " valid (" +
            pctStr(t.ltValid, t.ltEntries) + " occupancy)\n";
        const std::uint64_t updates = t.ltLinkWrites + t.ltPfRejected;
        out += "  link writes: " + std::to_string(t.ltLinkWrites) +
            " (" + std::to_string(t.ltLinkOverwrites) +
            " overwrote a different live link)\n";
        out += "  PF-bit rejects: " + std::to_string(t.ltPfRejected) +
            " of " + std::to_string(updates) + " updates (" +
            pctStr(t.ltPfRejected, updates) + ")\n";
    }
    if (!t.capConfHist.empty())
        out += "cap confidence hist (value 0..max): " +
            histLine(t.capConfHist) + "\n";
    if (!t.strideConfHist.empty())
        out += "stride confidence hist (value 0..max): " +
            histLine(t.strideConfHist) + "\n";
    if (t.hasSelector) {
        out += "selector hist (0/1 stride, 2/3 cap): [";
        for (std::size_t i = 0; i < t.selectorHist.size(); ++i) {
            if (i != 0)
                out += " ";
            out += std::to_string(t.selectorHist[i]);
        }
        out += "]\n";
    }
    if (t.hasCapGates) {
        const CapGateStats &g = t.capGates;
        out += "cap gates: formed " + std::to_string(g.formed) +
            ", speculated " + std::to_string(g.speculated) + " (" +
            pctStr(g.speculated, g.formed) + ")\n";
        out += "  vetoes: conf " + std::to_string(g.confVetoes) +
            ", tag " + std::to_string(g.tagVetoes) + ", path " +
            std::to_string(g.pathVetoes) + ", pipeline " +
            std::to_string(g.pipeVetoes) + "\n";
    }
    if (t.hasStrideGates) {
        const StrideGateStats &g = t.strideGates;
        out += "stride gates: formed " + std::to_string(g.formed) +
            ", speculated " + std::to_string(g.speculated) + " (" +
            pctStr(g.speculated, g.formed) + ")\n";
        out += "  vetoes: conf " + std::to_string(g.confVetoes) +
            ", interval " + std::to_string(g.intervalVetoes) +
            ", path " + std::to_string(g.pathVetoes) + ", pipeline " +
            std::to_string(g.pipeVetoes) + "\n";
    }
    return out;
}

} // namespace clap
