/**
 * @file
 * The hybrid CAP/enhanced-stride predictor of section 3.7: one shared
 * load buffer, both components predicting every dynamic load, a 2-bit
 * dynamic selector per LB entry arbitrating when both are confident,
 * and a configurable link-table update policy (section 4.3).
 */

#ifndef CLAP_CORE_HYBRID_PREDICTOR_HH
#define CLAP_CORE_HYBRID_PREDICTOR_HH

#include "core/cap_component.hh"
#include "core/config.hh"
#include "core/load_buffer.hh"
#include "core/predictor.hh"
#include "core/stride_component.hh"

namespace clap
{

/** Hybrid CAP/stride address predictor. */
class HybridPredictor : public AddressPredictor
{
  public:
    /** @throws std::invalid_argument when @p config fails validate(). */
    explicit HybridPredictor(const HybridConfig &config)
        : config_(validated(config)),
          arena_(LoadBuffer::laneBytes(config.lb) +
                 LinkTable::laneBytes(config.cap)),
          lb_(config.lb, &arena_),
          cap_(config.cap, config.pipelined, &arena_),
          stride_(config.stride, config.pipelined)
    {
    }

    Prediction predict(const LoadInfo &info) override;
    void update(const LoadInfo &info, std::uint64_t actual_addr,
                const Prediction &pred) override;

    /**
     * update() with an external veto on the link-table write, anded
     * with the configured LtUpdatePolicy. Used by the
     * profile-assisted wrapper to reserve the LT for context loads.
     */
    void update(const LoadInfo &info, std::uint64_t actual_addr,
                const Prediction &pred, bool allow_lt_update);

    std::string name() const override { return "hybrid"; }

    /** Shared LB + CAP LT structural invariants (core/audit.hh). */
    Expected<void> audit() const override;

    /** LB/LT occupancy, both confidence hists, selector
     *  distribution, and per-component gate vetoes. */
    PredictorTelemetry snapshotTelemetry() const override;

    LoadBuffer &loadBuffer() { return lb_; }
    const LoadBuffer &loadBuffer() const { return lb_; }
    CapComponent &capComponent() { return cap_; }
    const CapComponent &capComponent() const { return cap_; }
    StrideComponent &strideComponent() { return stride_; }
    const StrideComponent &strideComponent() const { return stride_; }
    const HybridConfig &config() const { return config_; }

  private:
    HybridConfig config_;
    LaneArena arena_; ///< one contiguous block for the LB + LT lanes
    LoadBuffer lb_;
    CapComponent cap_;
    StrideComponent stride_;
};

} // namespace clap

#endif // CLAP_CORE_HYBRID_PREDICTOR_HH
