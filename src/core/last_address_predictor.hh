/**
 * @file
 * Last-address predictor: the simplest prior-art scheme (A(N+1) =
 * A(N)), included as the historical baseline the paper cites as
 * covering ~40% of all loads (section 1).
 */

#ifndef CLAP_CORE_LAST_ADDRESS_PREDICTOR_HH
#define CLAP_CORE_LAST_ADDRESS_PREDICTOR_HH

#include "core/config.hh"
#include "core/load_buffer.hh"
#include "core/predictor.hh"

namespace clap
{

/** Per-static-load last-address predictor with a confidence counter. */
class LastAddressPredictor : public AddressPredictor
{
  public:
    /** @throws std::invalid_argument when @p config fails validate(). */
    explicit LastAddressPredictor(const LastAddressConfig &config)
        : config_(validated(config)), lb_(config.lb)
    {
    }

    Prediction predict(const LoadInfo &info) override;
    void update(const LoadInfo &info, std::uint64_t actual_addr,
                const Prediction &pred) override;
    std::string name() const override { return "last"; }

    /** LB occupancy and confidence hist (stored in strideConf). */
    PredictorTelemetry snapshotTelemetry() const override;

    LoadBuffer &loadBuffer() { return lb_; }
    const LoadBuffer &loadBuffer() const { return lb_; }

  private:
    LastAddressConfig config_;
    LoadBuffer lb_;
};

} // namespace clap

#endif // CLAP_CORE_LAST_ADDRESS_PREDICTOR_HH
