/**
 * @file
 * The enhanced stride prediction component: classic two-delta stride
 * prediction plus the paper's enhancements — confidence counters,
 * control-flow indications, interval counters that trade
 * mispredictions for no-predictions at learned array boundaries, and
 * the pipelined catch-up mechanism that extrapolates over pending
 * unresolved instances (sections 3.7 and 5.2).
 */

#ifndef CLAP_CORE_STRIDE_COMPONENT_HH
#define CLAP_CORE_STRIDE_COMPONENT_HH

#include <cstdint>

#include "core/config.hh"
#include "core/load_buffer.hh"
#include "core/predictor.hh"
#include "core/telemetry.hh"

namespace clap
{

/** Per-prediction stride bookkeeping, carried from predict to update. */
struct StrideResult
{
    bool hasAddr = false;
    bool speculate = false;
    std::uint64_t addr = 0;
};

/** Enhanced-stride prediction/update logic over shared LB entries. */
class StrideComponent
{
  public:
    StrideComponent(const StrideConfig &config, bool pipelined)
        : config_(config), pipelined_(pipelined)
    {
    }

    /** Form a stride prediction for @p info using entry @p entry. */
    StrideResult predict(LBEntry &entry, const LoadInfo &info);

    /** Resolve a prediction and train the stride state. */
    void update(LBEntry &entry, const LoadInfo &info,
                std::uint64_t actual_addr, const StrideResult &result);

    /** Initialize the stride fields of a fresh LB entry. */
    void initEntry(LBEntry &entry, std::uint64_t actual_addr);

    const StrideConfig &config() const { return config_; }

    /** Cumulative speculation-gate attribution (telemetry). */
    const StrideGateStats &gateStats() const { return gates_; }

    /** Overwrite the gate counters (core/state_io restore). */
    void setGateStats(const StrideGateStats &gates) { gates_ = gates; }

  private:
    bool pathAllows(const LBEntry &entry, std::uint64_t ghr) const;

    StrideConfig config_;
    bool pipelined_;
    StrideGateStats gates_;
};

} // namespace clap

#endif // CLAP_CORE_STRIDE_COMPONENT_HH
