#include "core/audit.hh"

#include <string>

#include "core/link_table.hh"
#include "core/load_buffer.hh"
#include "util/bits.hh"
#include "util/sat_counter.hh"

namespace clap
{

namespace
{

Error
corrupt(std::string message, const char *structure, std::size_t index)
{
    return makeError(ErrorCode::CorruptedState, std::move(message))
        .withContext(std::string(structure) + " entry " +
                     std::to_string(index));
}

/** Counter within its saturation range (defense against raw writes). */
bool
counterOk(const SatCounter &counter)
{
    return counter.value() <= counter.max();
}

} // namespace

Expected<void>
auditLoadBuffer(const LoadBuffer &lb)
{
    const unsigned assoc = lb.config().assoc;
    for (std::size_t i = 0; i < lb.numEntries(); ++i) {
        // Probe-lane coherence: a valid way's control byte must be
        // the fingerprint of its full tag, or lookup() could miss a
        // resident entry.
        if (!lb.lanesCoherentAt(i)) {
            return corrupt("control byte disagrees with tag lane",
                           "LB", i);
        }

        const LBEntryImage entry = lb.imageAt(i);
        if (!entry.valid)
            continue;

        // Tag uniqueness within the set: a duplicated tag would make
        // lookup() results depend on way order.
        const std::size_t set = i / assoc;
        for (std::size_t j = set * assoc; j < i; ++j) {
            const LBEntryImage other = lb.imageAt(j);
            if (other.valid && other.tag == entry.tag) {
                return corrupt("duplicate LB tag 0x" +
                                   std::to_string(entry.tag) +
                                   " in set " + std::to_string(set),
                               "LB", i);
            }
        }

        // History registers must fit their configured width.
        if ((entry.hist.value() & ~mask(entry.hist.numBits())) != 0)
            return corrupt("history value exceeds width", "LB", i);
        if ((entry.specHist.value() &
             ~mask(entry.specHist.numBits())) != 0) {
            return corrupt("speculative history value exceeds width",
                           "LB", i);
        }

        // Confidence and selector counters within saturation range.
        if (!counterOk(entry.capConf))
            return corrupt("CAP confidence counter overflow", "LB", i);
        if (!counterOk(entry.strideConf)) {
            return corrupt("stride confidence counter overflow", "LB",
                           i);
        }
        if (!counterOk(entry.selector))
            return corrupt("selector counter overflow", "LB", i);
    }
    return ok();
}

Expected<void>
auditLinkTable(const LinkTable &lt)
{
    const CapConfig &config = lt.config();
    const unsigned assoc = lt.assoc();
    for (std::size_t i = 0; i < lt.numEntries(); ++i) {
        // Packed probe word must agree with the full-tag lane.
        if (!lt.lanesCoherentAt(i)) {
            return corrupt("probe word disagrees with tag lane", "LT",
                           i);
        }

        const LTEntry entry = lt.imageAt(i);

        // PF bits live in bits [0, pfBits); anything above means a
        // raw write landed outside the mechanism's field.
        if ((entry.pf & ~mask(config.pfBits)) != 0)
            return corrupt("PF bits exceed configured width", "LT", i);

        if (!entry.valid)
            continue;

        // Tags are history MSBs truncated to ltTagBits.
        if ((entry.tag & ~mask(config.ltTagBits)) != 0)
            return corrupt("tag exceeds ltTagBits", "LT", i);

        // Tag uniqueness within a set (associative organizations;
        // direct-mapped sets hold one entry, nothing to collide).
        const std::size_t set = i / assoc;
        if (config.ltTagBits > 0) {
            for (std::size_t j = set * assoc; j < i; ++j) {
                const LTEntry other = lt.imageAt(j);
                if (other.valid && other.tag == entry.tag) {
                    return corrupt("duplicate LT tag 0x" +
                                       std::to_string(entry.tag) +
                                       " in set " +
                                       std::to_string(set),
                                   "LT", i);
                }
            }
        }
    }
    return ok();
}

} // namespace clap
