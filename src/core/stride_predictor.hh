/**
 * @file
 * Stand-alone enhanced stride predictor: the paper's baseline
 * comparison point ("enhanced stride-based predictor features the
 * control-flow indications and the interval technique", section 4.2).
 */

#ifndef CLAP_CORE_STRIDE_PREDICTOR_HH
#define CLAP_CORE_STRIDE_PREDICTOR_HH

#include "core/config.hh"
#include "core/load_buffer.hh"
#include "core/predictor.hh"
#include "core/stride_component.hh"

namespace clap
{

/** Stand-alone enhanced stride address predictor. */
class StridePredictor : public AddressPredictor
{
  public:
    /** @throws std::invalid_argument when @p config fails validate(). */
    explicit StridePredictor(const StridePredictorConfig &config)
        : lb_(validated(config).lb),
          stride_(config.stride, config.pipelined)
    {
    }

    Prediction predict(const LoadInfo &info) override;
    void update(const LoadInfo &info, std::uint64_t actual_addr,
                const Prediction &pred) override;
    std::string name() const override { return "stride"; }

    /** LB structural invariants (core/audit.hh). */
    Expected<void> audit() const override;

    /** LB occupancy, stride confidence hist, gate vetoes. */
    PredictorTelemetry snapshotTelemetry() const override;

    LoadBuffer &loadBuffer() { return lb_; }
    const LoadBuffer &loadBuffer() const { return lb_; }
    StrideComponent &component() { return stride_; }
    const StrideComponent &component() const { return stride_; }

  private:
    LoadBuffer lb_;
    StrideComponent stride_;
};

} // namespace clap

#endif // CLAP_CORE_STRIDE_PREDICTOR_HH
