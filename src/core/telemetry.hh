/**
 * @file
 * Predictor-state introspection: a deterministic snapshot of the
 * internal structures the paper's analysis rests on — load-buffer and
 * link-table occupancy, confidence-counter and selector distributions,
 * control-flow-gate veto rates, and the PF-bit filter's
 * overwrite/reject behaviour (sections 3.4, 3.5, 3.7).
 *
 * PredictorTelemetry is deliberately NOT part of PredictionStats:
 * PredictionStats carries the bit-for-bit reproducibility contract
 * (serve/crosscheck compares it with operator==), while telemetry is
 * a diagnostic view that may grow fields freely. Everything here is
 * computed from deterministic simulation state, so two identical runs
 * produce identical telemetry — but nothing ever compares it for
 * equality across configurations.
 *
 * The structs are plain data with no dependency on src/obs; the obs
 * layer and tools render them (telemetryJson/telemetryText).
 */

#ifndef CLAP_CORE_TELEMETRY_HH
#define CLAP_CORE_TELEMETRY_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace clap
{

/**
 * Why CAP predictions that formed an address were (not) speculated
 * on: each formed prediction either speculates or is vetoed by the
 * first failing gate in the order the paper discusses them —
 * confidence counter (3.4), LT tag filter (3.4), control-flow
 * indication (3.4), pipeline block/stale (5.2).
 */
struct CapGateStats
{
    std::uint64_t formed = 0;     ///< predictions with an address
    std::uint64_t speculated = 0; ///< ... that passed every gate
    std::uint64_t confVetoes = 0; ///< confidence counter below threshold
    std::uint64_t tagVetoes = 0;  ///< LT tag confidence filter miss
    std::uint64_t pathVetoes = 0; ///< control-flow indication veto
    std::uint64_t pipeVetoes = 0; ///< blocked/stale speculative state
};

/** Same attribution for the enhanced stride component's gate
 *  cascade: confidence, then interval boundary, then control flow. */
struct StrideGateStats
{
    std::uint64_t formed = 0;
    std::uint64_t speculated = 0;
    std::uint64_t confVetoes = 0;
    std::uint64_t intervalVetoes = 0; ///< learned array-boundary stop
    std::uint64_t pathVetoes = 0;
    std::uint64_t pipeVetoes = 0;
};

/** Point-in-time introspection snapshot of one predictor. */
struct PredictorTelemetry
{
    std::string predictor; ///< predictor name() this was taken from

    /// @name Load buffer occupancy
    /// @{
    bool hasLoadBuffer = false;
    std::uint64_t lbEntries = 0; ///< total slots
    std::uint64_t lbValid = 0;   ///< currently valid entries
    std::uint64_t lbAllocations = 0;
    /// @}

    /// @name Link table occupancy and PF-bit filter
    /// @{
    bool hasLinkTable = false;
    std::uint64_t ltEntries = 0;
    std::uint64_t ltValid = 0;
    std::uint64_t ltLinkWrites = 0;     ///< links installed
    std::uint64_t ltLinkOverwrites = 0; ///< installs replacing a
                                        ///< different live link
    std::uint64_t ltPfRejected = 0;     ///< updates the PF hysteresis
                                        ///< filtered out
    /// @}

    /// @name Per-entry distributions over valid LB entries
    /// @{
    std::vector<std::uint64_t> capConfHist;    ///< index = counter value
    std::vector<std::uint64_t> strideConfHist; ///< index = counter value
    std::array<std::uint64_t, 4> selectorHist{}; ///< 2-bit selector
    bool hasSelector = false;
    /// @}

    /// @name Speculation gate attribution (cumulative over the run)
    /// @{
    bool hasCapGates = false;
    CapGateStats capGates;
    bool hasStrideGates = false;
    StrideGateStats strideGates;
    /// @}
};

class LoadBuffer;
class LinkTable;

/** Fill LB occupancy and the per-entry confidence/selector
 *  distributions from @p lb. @p withCap / @p withStride /
 *  @p withSelector select which distributions are meaningful for the
 *  calling predictor. */
void fillLoadBufferTelemetry(const LoadBuffer &lb, PredictorTelemetry &t,
                             bool withCap, bool withStride,
                             bool withSelector);

/** Fill LT occupancy and PF-bit counters from @p lt. */
void fillLinkTableTelemetry(const LinkTable &lt, PredictorTelemetry &t);

/** Deterministic JSON rendering (parseable by util/json.hh). */
std::string telemetryJson(const PredictorTelemetry &t);

/** Human-readable multi-line rendering for obs_tool / stdout. */
std::string telemetryText(const PredictorTelemetry &t);

} // namespace clap

#endif // CLAP_CORE_TELEMETRY_HH
