#include "core/profile.hh"

#include "trace/trace.hh"
#include "util/bits.hh"

namespace clap
{

const char *
loadClassName(LoadClass cls)
{
    switch (cls) {
      case LoadClass::Unknown: return "unknown";
      case LoadClass::Constant: return "constant";
      case LoadClass::Stride: return "stride";
      case LoadClass::Context: return "context";
      default: return "?";
    }
}

void
LoadClassifier::observe(std::uint64_t pc, std::uint64_t addr)
{
    PerLoad &load = loads_[pc];

    // Score the models against their prediction made from the state
    // *before* this instance.
    if (load.lastValid) {
        if (addr == load.lastAddr)
            ++load.lastHits;
        if (load.strideValid &&
            addr == load.lastAddr +
                    static_cast<std::uint64_t>(load.stride)) {
            ++load.strideHits;
        }
        const auto link = load.links.find(load.hist);
        if (link != load.links.end() && link->second == addr)
            ++load.contextHits;
    }

    // Train the models.
    if (load.lastValid) {
        load.stride = static_cast<std::int64_t>(addr - load.lastAddr);
        load.strideValid = true;
        load.links[load.hist] = addr;
    }
    const unsigned shift =
        (32 + config_.historyLength - 1) / config_.historyLength;
    load.hist = ((load.hist << shift) ^ (addr >> 2)) & mask(32);

    load.lastAddr = addr;
    load.lastValid = true;
    ++load.instances;
}

LoadClass
LoadClassifier::classify(std::uint64_t pc) const
{
    const auto it = loads_.find(pc);
    if (it == loads_.end())
        return LoadClass::Unknown;
    const PerLoad &load = it->second;
    if (load.instances < config_.minInstances)
        return LoadClass::Unknown;

    const double scored =
        static_cast<double>(load.instances - 1);
    const double last_rate = load.lastHits / scored;
    const double stride_rate = load.strideHits / scored;
    const double context_rate = load.contextHits / scored;

    // Prefer the cheapest sufficient model, as a compiler would.
    if (last_rate >= config_.threshold)
        return LoadClass::Constant;
    if (stride_rate >= config_.threshold)
        return LoadClass::Stride;
    if (context_rate >= config_.threshold)
        return LoadClass::Context;
    return LoadClass::Unknown;
}

std::unordered_map<std::uint64_t, LoadClass>
LoadClassifier::classifyAll() const
{
    std::unordered_map<std::uint64_t, LoadClass> classes;
    classes.reserve(loads_.size());
    for (const auto &[pc, load] : loads_) {
        (void)load;
        classes[pc] = classify(pc);
    }
    return classes;
}

ProfileAssistedPredictor::ProfileAssistedPredictor(
    const HybridConfig &config,
    std::unordered_map<std::uint64_t, LoadClass> classes)
    : hybrid_(config), classes_(std::move(classes))
{
}

LoadClass
ProfileAssistedPredictor::classOf(std::uint64_t pc) const
{
    const auto it = classes_.find(pc);
    return it == classes_.end() ? LoadClass::Unknown : it->second;
}

Prediction
ProfileAssistedPredictor::predict(const LoadInfo &info)
{
    if (classOf(info.pc) == LoadClass::Unknown) {
        // Pollution elimination: the load never touches the tables.
        ++filtered_;
        return Prediction{};
    }
    return hybrid_.predict(info);
}

void
ProfileAssistedPredictor::update(const LoadInfo &info,
                                 std::uint64_t actual_addr,
                                 const Prediction &pred)
{
    const LoadClass cls = classOf(info.pc);
    if (cls == LoadClass::Unknown)
        return;
    // The link table is reserved for the loads that need it.
    hybrid_.update(info, actual_addr, pred,
                   cls == LoadClass::Context);
}

std::unique_ptr<ProfileAssistedPredictor>
buildProfiledPredictor(const Trace &training_trace,
                       const HybridConfig &config,
                       const ClassifierConfig &classifier_config)
{
    LoadClassifier classifier(classifier_config);
    for (const auto &rec : training_trace.records()) {
        if (rec.isLoad())
            classifier.observe(rec.pc, rec.effAddr);
    }
    return std::make_unique<ProfileAssistedPredictor>(
        config, classifier.classifyAll());
}

} // namespace clap
