#include "core/state_io.hh"

#include <bit>
#include <cstring>

#include "core/cap_predictor.hh"
#include "core/hybrid_predictor.hh"
#include "core/last_address_predictor.hh"
#include "core/link_table.hh"
#include "core/load_buffer.hh"
#include "core/predictor.hh"
#include "core/stride_predictor.hh"
#include "util/atomic_file.hh"
#include "util/crc32.hh"

namespace clap
{

namespace
{

/** Little-endian append-only byte sink. */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        out_ += static_cast<char>(v);
    }

    void b(bool v) { u8(v ? 1 : 0); }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out_ += static_cast<char>((v >> (8 * i)) & 0xff);
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out_ += static_cast<char>((v >> (8 * i)) & 0xff);
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    void
    bytes(std::string_view data)
    {
        out_.append(data.data(), data.size());
    }

    const std::string &str() const { return out_; }
    std::string take() { return std::move(out_); }

  private:
    std::string out_;
};

/** Little-endian cursor reader; every read reports underrun. */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view data) : data_(data) {}

    bool
    u8(std::uint8_t &v)
    {
        if (pos_ >= data_.size())
            return false;
        v = static_cast<std::uint8_t>(data_[pos_++]);
        return true;
    }

    bool
    b(bool &v)
    {
        std::uint8_t raw = 0;
        if (!u8(raw) || raw > 1)
            return false;
        v = raw != 0;
        return true;
    }

    bool
    u32(std::uint32_t &v)
    {
        if (data_.size() - pos_ < 4)
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<std::uint8_t>(data_[pos_++]))
                << (8 * i);
        return true;
    }

    bool
    u64(std::uint64_t &v)
    {
        if (data_.size() - pos_ < 8)
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<std::uint8_t>(data_[pos_++]))
                << (8 * i);
        return true;
    }

    bool
    i64(std::int64_t &v)
    {
        std::uint64_t raw = 0;
        if (!u64(raw))
            return false;
        v = static_cast<std::int64_t>(raw);
        return true;
    }

    bool
    bytes(std::string_view &out, std::size_t len)
    {
        if (data_.size() - pos_ < len)
            return false;
        out = data_.substr(pos_, len);
        pos_ += len;
        return true;
    }

    bool done() const { return pos_ == data_.size(); }
    std::size_t pos() const { return pos_; }
    std::size_t remaining() const { return data_.size() - pos_; }

  private:
    std::string_view data_;
    std::size_t pos_ = 0;
};

void
putSatCounter(ByteWriter &w, const SatCounter &c)
{
    w.u8(c.max());
    w.u8(c.initialValue());
    w.u8(c.value());
}

bool
getSatCounter(ByteReader &r, SatCounter &c)
{
    std::uint8_t max = 0, initial = 0, count = 0;
    if (!r.u8(max) || !r.u8(initial) || !r.u8(count))
        return false;
    // max must be 2^n - 1 for n in 1..8; the counter asserts the rest.
    if (max == 0 ||
        ((static_cast<unsigned>(max) + 1u) & static_cast<unsigned>(max)) !=
            0)
        return false;
    if (initial > max || count > max)
        return false;
    c = SatCounter(static_cast<unsigned>(std::bit_width(
                       static_cast<unsigned>(max))),
                   initial);
    c.set(count);
    return true;
}

void
putHistory(ByteWriter &w, const HistoryRegister &h)
{
    w.u32(h.numBits());
    w.u32(h.shiftAmount());
    w.u64(h.value());
}

bool
getHistory(ByteReader &r, HistoryRegister &h)
{
    std::uint32_t bits = 0, shift = 0;
    std::uint64_t value = 0;
    if (!r.u32(bits) || !r.u32(shift) || !r.u64(value))
        return false;
    if (bits < 1 || bits > 63 || shift < 1 || shift > 63)
        return false;
    h = HistoryRegister(bits, shift);
    h.setValue(value);
    return true;
}

void
putLbEntry(ByteWriter &w, const LBEntryImage &e)
{
    w.b(e.valid);
    w.u64(e.tag);
    w.u64(e.lruStamp);
    w.u8(e.offsetLsb);
    w.b(e.capInit);
    putHistory(w, e.hist);
    putHistory(w, e.specHist);
    putSatCounter(w, e.capConf);
    w.u64(e.capGhrPattern);
    w.b(e.capGhrValid);
    w.u32(e.capPathOk);
    w.u32(e.capPending);
    w.b(e.capBlocked);
    w.b(e.capSpecStale);
    w.b(e.lastValid);
    w.u64(e.lastAddr);
    w.i64(e.stride);
    w.i64(e.candStride);
    putSatCounter(w, e.strideConf);
    w.u64(e.strideGhrPattern);
    w.b(e.strideGhrValid);
    w.u32(e.run);
    w.u32(e.interval);
    w.b(e.intervalValid);
    w.u32(e.stridePending);
    w.u64(e.specLastAddr);
    w.b(e.strideBlocked);
    putSatCounter(w, e.selector);
}

bool
getLbEntry(ByteReader &r, LBEntryImage &e)
{
    return r.b(e.valid) && r.u64(e.tag) && r.u64(e.lruStamp) &&
           r.u8(e.offsetLsb) && r.b(e.capInit) && getHistory(r, e.hist) &&
           getHistory(r, e.specHist) && getSatCounter(r, e.capConf) &&
           r.u64(e.capGhrPattern) && r.b(e.capGhrValid) &&
           r.u32(e.capPathOk) && r.u32(e.capPending) &&
           r.b(e.capBlocked) && r.b(e.capSpecStale) && r.b(e.lastValid) &&
           r.u64(e.lastAddr) && r.i64(e.stride) && r.i64(e.candStride) &&
           getSatCounter(r, e.strideConf) && r.u64(e.strideGhrPattern) &&
           r.b(e.strideGhrValid) && r.u32(e.run) && r.u32(e.interval) &&
           r.b(e.intervalValid) && r.u32(e.stridePending) &&
           r.u64(e.specLastAddr) && r.b(e.strideBlocked) &&
           getSatCounter(r, e.selector);
}

std::string
encodeLoadBuffer(const LoadBuffer &lb)
{
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(lb.numEntries()));
    w.u32(lb.config().assoc);
    w.u64(lb.lruClock());
    w.u64(lb.allocations());
    for (std::size_t i = 0; i < lb.numEntries(); ++i)
        putLbEntry(w, lb.imageAt(i));
    return w.take();
}

bool
decodeLoadBuffer(std::string_view payload, LoadBuffer &lb,
                 std::string &reason)
{
    ByteReader r(payload);
    std::uint32_t entries = 0, assoc = 0;
    std::uint64_t clock = 0, allocations = 0;
    if (!r.u32(entries) || !r.u32(assoc) || !r.u64(clock) ||
        !r.u64(allocations)) {
        reason = "load-buffer section header truncated";
        return false;
    }
    if (entries != lb.numEntries() || assoc != lb.config().assoc) {
        reason = "load-buffer geometry mismatch (file " +
                 std::to_string(entries) + "x" + std::to_string(assoc) +
                 ", target " + std::to_string(lb.numEntries()) + "x" +
                 std::to_string(lb.config().assoc) + ")";
        return false;
    }
    std::vector<LBEntryImage> staged(entries);
    for (auto &entry : staged) {
        if (!getLbEntry(r, entry)) {
            reason = "corrupt load-buffer entry at offset " +
                     std::to_string(r.pos());
            return false;
        }
    }
    if (!r.done()) {
        reason = "trailing bytes in load-buffer section";
        return false;
    }
    for (std::size_t i = 0; i < staged.size(); ++i)
        lb.setImageAt(i, staged[i]);
    lb.setLruClock(clock);
    lb.setAllocations(allocations);
    return true;
}

std::string
encodeLinkTable(const LinkTable &lt)
{
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(lt.numEntries()));
    w.u32(lt.assoc());
    w.u32(static_cast<std::uint32_t>(lt.pfTableSize()));
    w.u64(lt.lruClock());
    w.u64(lt.linkWrites());
    w.u64(lt.linkOverwrites());
    w.u64(lt.pfFiltered());
    for (std::size_t i = 0; i < lt.numEntries(); ++i) {
        const LTEntry e = lt.imageAt(i);
        w.b(e.valid);
        w.u64(e.tag);
        w.u64(e.link);
        w.u8(e.pf);
        w.b(e.pfValid);
        w.u64(e.lru);
    }
    for (std::size_t i = 0; i < lt.pfTableSize(); ++i) {
        w.u8(lt.pfTableValueAt(i));
        w.b(lt.pfTableValidAt(i));
    }
    return w.take();
}

bool
decodeLinkTable(std::string_view payload, LinkTable &lt,
                std::string &reason)
{
    ByteReader r(payload);
    std::uint32_t entries = 0, assoc = 0, pf_size = 0;
    std::uint64_t clock = 0, writes = 0, overwrites = 0, filtered = 0;
    if (!r.u32(entries) || !r.u32(assoc) || !r.u32(pf_size) ||
        !r.u64(clock) || !r.u64(writes) || !r.u64(overwrites) ||
        !r.u64(filtered)) {
        reason = "link-table section header truncated";
        return false;
    }
    if (entries != lt.numEntries() || assoc != lt.assoc() ||
        pf_size != lt.pfTableSize()) {
        reason = "link-table geometry mismatch (file " +
                 std::to_string(entries) + "x" + std::to_string(assoc) +
                 "/pf" + std::to_string(pf_size) + ", target " +
                 std::to_string(lt.numEntries()) + "x" +
                 std::to_string(lt.assoc()) + "/pf" +
                 std::to_string(lt.pfTableSize()) + ")";
        return false;
    }
    std::vector<LTEntry> staged(entries);
    for (auto &e : staged) {
        if (!r.b(e.valid) || !r.u64(e.tag) || !r.u64(e.link) ||
            !r.u8(e.pf) || !r.b(e.pfValid) || !r.u64(e.lru)) {
            reason = "corrupt link-table entry at offset " +
                     std::to_string(r.pos());
            return false;
        }
    }
    std::vector<std::pair<std::uint8_t, bool>> staged_pf(pf_size);
    for (auto &[value, valid] : staged_pf) {
        if (!r.u8(value) || !r.b(valid)) {
            reason = "corrupt PF-table entry at offset " +
                     std::to_string(r.pos());
            return false;
        }
    }
    if (!r.done()) {
        reason = "trailing bytes in link-table section";
        return false;
    }
    for (std::size_t i = 0; i < staged.size(); ++i)
        lt.setImageAt(i, staged[i]);
    for (std::size_t i = 0; i < staged_pf.size(); ++i)
        lt.setPfTableAt(i, staged_pf[i].first, staged_pf[i].second);
    lt.setLruClock(clock);
    lt.setCounters(writes, overwrites, filtered);
    return true;
}

std::string
encodeCapGates(const CapGateStats &g)
{
    ByteWriter w;
    w.u64(g.formed);
    w.u64(g.speculated);
    w.u64(g.confVetoes);
    w.u64(g.tagVetoes);
    w.u64(g.pathVetoes);
    w.u64(g.pipeVetoes);
    return w.take();
}

bool
decodeCapGates(std::string_view payload, CapGateStats &g,
               std::string &reason)
{
    ByteReader r(payload);
    if (!r.u64(g.formed) || !r.u64(g.speculated) || !r.u64(g.confVetoes) ||
        !r.u64(g.tagVetoes) || !r.u64(g.pathVetoes) ||
        !r.u64(g.pipeVetoes) || !r.done()) {
        reason = "malformed CAP gate section";
        return false;
    }
    return true;
}

std::string
encodeStrideGates(const StrideGateStats &g)
{
    ByteWriter w;
    w.u64(g.formed);
    w.u64(g.speculated);
    w.u64(g.confVetoes);
    w.u64(g.intervalVetoes);
    w.u64(g.pathVetoes);
    w.u64(g.pipeVetoes);
    return w.take();
}

bool
decodeStrideGates(std::string_view payload, StrideGateStats &g,
                  std::string &reason)
{
    ByteReader r(payload);
    if (!r.u64(g.formed) || !r.u64(g.speculated) || !r.u64(g.confVetoes) ||
        !r.u64(g.intervalVetoes) || !r.u64(g.pathVetoes) ||
        !r.u64(g.pipeVetoes) || !r.done()) {
        reason = "malformed stride gate section";
        return false;
    }
    return true;
}

/** Mutable views of the structures a predictor kind exposes. */
struct PredictorParts
{
    LoadBuffer *lb = nullptr;
    LinkTable *lt = nullptr;
    CapComponent *cap = nullptr;
    StrideComponent *stride = nullptr;
};

struct ConstPredictorParts
{
    const LoadBuffer *lb = nullptr;
    const LinkTable *lt = nullptr;
    const CapComponent *cap = nullptr;
    const StrideComponent *stride = nullptr;
};

ConstPredictorParts
partsOf(const AddressPredictor &pred)
{
    ConstPredictorParts p;
    if (const auto *hybrid = dynamic_cast<const HybridPredictor *>(&pred)) {
        p.lb = &hybrid->loadBuffer();
        p.cap = &hybrid->capComponent();
        p.lt = &hybrid->capComponent().linkTable();
        p.stride = &hybrid->strideComponent();
    } else if (const auto *cap = dynamic_cast<const CapPredictor *>(&pred)) {
        p.lb = &cap->loadBuffer();
        p.cap = &cap->component();
        p.lt = &cap->component().linkTable();
    } else if (const auto *stride =
                   dynamic_cast<const StridePredictor *>(&pred)) {
        p.lb = &stride->loadBuffer();
        p.stride = &stride->component();
    } else if (const auto *last =
                   dynamic_cast<const LastAddressPredictor *>(&pred)) {
        p.lb = &last->loadBuffer();
    }
    return p;
}

PredictorParts
partsOf(AddressPredictor &pred)
{
    PredictorParts p;
    if (auto *hybrid = dynamic_cast<HybridPredictor *>(&pred)) {
        p.lb = &hybrid->loadBuffer();
        p.cap = &hybrid->capComponent();
        p.lt = &hybrid->capComponent().linkTable();
        p.stride = &hybrid->strideComponent();
    } else if (auto *cap = dynamic_cast<CapPredictor *>(&pred)) {
        p.lb = &cap->loadBuffer();
        p.cap = &cap->component();
        p.lt = &cap->component().linkTable();
    } else if (auto *stride = dynamic_cast<StridePredictor *>(&pred)) {
        p.lb = &stride->loadBuffer();
        p.stride = &stride->component();
    } else if (auto *last = dynamic_cast<LastAddressPredictor *>(&pred)) {
        p.lb = &last->loadBuffer();
    }
    return p;
}

void
appendSection(ByteWriter &w, std::uint32_t id, const std::string &payload)
{
    w.u32(id);
    w.u64(payload.size());
    w.bytes(payload);
    w.u32(crc32(payload.data(), payload.size()));
}

/** One walked section: id, payload view, CRC verdict. */
struct WalkedSection
{
    std::uint32_t id = 0;
    std::string_view payload;
    bool intact = false;
};

struct WalkedFile
{
    std::uint32_t version = 0;
    std::string predictor;
    std::uint32_t declared = 0; ///< section count from the header
    std::vector<WalkedSection> sections;
    bool footerOk = false;
    std::size_t bodyEnd = 0; ///< offset where the footer should start
};

/**
 * Parse the header and walk as many sections as the bytes allow.
 * Only header-level damage errors out; section damage is recorded in
 * the per-section intact flags (a truncated section also ends the
 * walk, leaving later promised sections unrepresented).
 */
Expected<WalkedFile>
walkStateBytes(std::string_view bytes)
{
    WalkedFile file;
    ByteReader r(bytes);
    std::string_view magic;
    if (!r.bytes(magic, sizeof(stateMagic)) ||
        std::memcmp(magic.data(), stateMagic, sizeof(stateMagic)) != 0) {
        return makeError(ErrorCode::BadMagic,
                         "not a predictor snapshot (bad magic)");
    }
    if (!r.u32(file.version)) {
        return makeError(ErrorCode::Truncated,
                         "snapshot ends inside the header");
    }
    if (file.version == 0 || file.version > stateFormatVersion) {
        return makeError(ErrorCode::BadVersion,
                         "snapshot format version " +
                             std::to_string(file.version) +
                             " is newer than supported version " +
                             std::to_string(stateFormatVersion));
    }
    std::uint32_t name_len = 0;
    if (!r.u32(name_len)) {
        return makeError(ErrorCode::Truncated,
                         "snapshot ends inside the header");
    }
    if (name_len > maxStateNameLen) {
        return makeError(ErrorCode::BadHeader,
                         "predictor name length " +
                             std::to_string(name_len) +
                             " exceeds the sanity bound");
    }
    std::string_view name;
    if (!r.bytes(name, name_len) || !r.u32(file.declared)) {
        return makeError(ErrorCode::Truncated,
                         "snapshot ends inside the header");
    }
    file.predictor.assign(name);
    if (file.declared > maxStateSections) {
        return makeError(ErrorCode::BadHeader,
                         "section count " + std::to_string(file.declared) +
                             " exceeds the sanity bound");
    }
    for (std::uint32_t i = 0; i < file.declared; ++i) {
        WalkedSection section;
        std::uint64_t length = 0;
        if (!r.u32(section.id) || !r.u64(length))
            break; // truncated mid-frame: stop the walk
        if (length > r.remaining())
            break; // payload truncated
        std::string_view payload;
        std::uint32_t stored_crc = 0;
        if (!r.bytes(payload, static_cast<std::size_t>(length)) ||
            !r.u32(stored_crc))
            break;
        section.payload = payload;
        section.intact =
            crc32(payload.data(), payload.size()) == stored_crc;
        file.sections.push_back(section);
    }
    file.bodyEnd = r.pos();
    std::uint32_t footer = 0;
    if (file.sections.size() == file.declared && r.u32(footer)) {
        file.footerOk =
            crc32(bytes.data(), file.bodyEnd) == footer && r.done();
    }
    return file;
}

} // namespace

Expected<std::string>
encodePredictorState(const AddressPredictor &pred,
                     const std::vector<StateExtraSection> &extras)
{
    const ConstPredictorParts parts = partsOf(pred);
    if (parts.lb == nullptr) {
        return makeError(ErrorCode::InvalidArgument,
                         "predictor '" + pred.name() +
                             "' does not support state serialization");
    }
    for (const auto &extra : extras) {
        if (extra.id < firstCallerSection) {
            return makeError(ErrorCode::InvalidArgument,
                             "caller section id " +
                                 std::to_string(extra.id) +
                                 " collides with the reserved range");
        }
    }

    // Sections: extras first, then gates, LT, and the LB last —
    // smallest first, so truncation costs the cheapest state.
    std::vector<std::pair<std::uint32_t, std::string>> sections;
    for (const auto &extra : extras)
        sections.emplace_back(extra.id, extra.payload);
    if (parts.cap != nullptr) {
        sections.emplace_back(
            static_cast<std::uint32_t>(StateSection::CapGates),
            encodeCapGates(parts.cap->gateStats()));
    }
    if (parts.stride != nullptr) {
        sections.emplace_back(
            static_cast<std::uint32_t>(StateSection::StrideGates),
            encodeStrideGates(parts.stride->gateStats()));
    }
    if (parts.lt != nullptr) {
        sections.emplace_back(
            static_cast<std::uint32_t>(StateSection::LinkTable),
            encodeLinkTable(*parts.lt));
    }
    sections.emplace_back(
        static_cast<std::uint32_t>(StateSection::LoadBuffer),
        encodeLoadBuffer(*parts.lb));

    const std::string name = pred.name();
    ByteWriter w;
    w.bytes(std::string_view(stateMagic, sizeof(stateMagic)));
    w.u32(stateFormatVersion);
    w.u32(static_cast<std::uint32_t>(name.size()));
    w.bytes(name);
    w.u32(static_cast<std::uint32_t>(sections.size()));
    for (const auto &[id, payload] : sections)
        appendSection(w, id, payload);
    const std::uint32_t footer = crc32(w.str().data(), w.str().size());
    w.u32(footer);
    return w.take();
}

Expected<StateReadResult>
decodePredictorState(std::string_view bytes, AddressPredictor &pred,
                     const StateReadOptions &options,
                     std::vector<StateExtraSection> *extras)
{
    auto walked = walkStateBytes(bytes);
    if (!walked)
        return std::move(walked.error())
            .withContext("restoring predictor state");
    const WalkedFile &file = *walked;

    if (file.predictor != pred.name()) {
        return makeError(ErrorCode::InvalidArgument,
                         "snapshot holds '" + file.predictor +
                             "' state, target predictor is '" +
                             pred.name() + "'");
    }

    PredictorParts parts = partsOf(pred);
    if (parts.lb == nullptr) {
        return makeError(ErrorCode::InvalidArgument,
                         "predictor '" + pred.name() +
                             "' does not support state serialization");
    }

    const bool frame_complete =
        file.sections.size() == file.declared && file.footerOk;
    if (!options.salvage && !frame_complete) {
        if (file.sections.size() != file.declared) {
            return makeError(
                ErrorCode::Truncated,
                "snapshot holds " +
                    std::to_string(file.sections.size()) + " of " +
                    std::to_string(file.declared) +
                    " promised sections");
        }
        return makeError(ErrorCode::BadChecksum,
                         "snapshot footer CRC mismatch");
    }

    // Start from cleared structures; intact sections overwrite them,
    // so a dropped section degrades to a cold (but audit-clean) table.
    parts.lb->clear();
    parts.lb->setLruClock(0);
    parts.lb->setAllocations(0);
    if (parts.lt != nullptr) {
        parts.lt->clear();
        parts.lt->setLruClock(0);
        parts.lt->setCounters(0, 0, 0);
    }
    if (parts.cap != nullptr)
        parts.cap->setGateStats(CapGateStats{});
    if (parts.stride != nullptr)
        parts.stride->setGateStats(StrideGateStats{});

    StateReadResult result;
    result.version = file.version;
    result.sections = file.declared;

    auto damaged = [&](std::uint32_t id,
                       const std::string &reason) -> Expected<void> {
        if (!options.salvage) {
            return makeError(ErrorCode::BadRecord, reason)
                .withContext("section " + std::to_string(id));
        }
        result.droppedSections.push_back(id);
        return ok();
    };

    for (const WalkedSection &section : file.sections) {
        std::string reason;
        bool applied = false;
        if (!section.intact) {
            if (auto status = damaged(section.id, "section CRC mismatch");
                !status)
                return status.error();
            continue;
        }
        switch (static_cast<StateSection>(section.id)) {
          case StateSection::LoadBuffer:
            applied = decodeLoadBuffer(section.payload, *parts.lb, reason);
            break;
          case StateSection::LinkTable:
            if (parts.lt == nullptr) {
                reason = "link-table section for a predictor without one";
            } else {
                applied =
                    decodeLinkTable(section.payload, *parts.lt, reason);
            }
            break;
          case StateSection::CapGates: {
            CapGateStats gates;
            if (parts.cap == nullptr) {
                reason = "CAP gate section for a predictor without CAP";
            } else if (decodeCapGates(section.payload, gates, reason)) {
                parts.cap->setGateStats(gates);
                applied = true;
            }
            break;
          }
          case StateSection::StrideGates: {
            StrideGateStats gates;
            if (parts.stride == nullptr) {
                reason = "stride gate section for a predictor without "
                         "a stride component";
            } else if (decodeStrideGates(section.payload, gates, reason)) {
                parts.stride->setGateStats(gates);
                applied = true;
            }
            break;
          }
          default:
            if (section.id >= firstCallerSection) {
                if (extras != nullptr) {
                    extras->push_back(StateExtraSection{
                        section.id, std::string(section.payload)});
                }
                applied = true;
            } else {
                reason = "unknown reserved section id";
            }
            break;
        }
        if (applied) {
            ++result.restored;
        } else {
            // Geometry mismatches are a caller error, not file damage:
            // salvage must not silently discard a whole table because
            // the target predictor was configured differently.
            if (reason.find("geometry mismatch") != std::string::npos) {
                return makeError(ErrorCode::InvalidArgument, reason)
                    .withContext("section " + std::to_string(section.id));
            }
            if (auto status = damaged(section.id, reason); !status)
                return status.error();
        }
    }

    result.salvaged = !result.droppedSections.empty() ||
                      file.sections.size() != file.declared;
    if (file.sections.size() != file.declared) {
        // Promised sections the walk never reached. Their ids are not
        // in the file any more, but the predictor sections this
        // target expected and never saw must be among them (the
        // encoder writes the LoadBuffer last, so truncation loses
        // these first); caller sections lost with them are
        // unknowable and reported as id 0.
        const auto walked = [&file](StateSection id) {
            for (const WalkedSection &section : file.sections) {
                if (section.id == static_cast<std::uint32_t>(id))
                    return true;
            }
            return false;
        };
        std::vector<std::uint32_t> missing;
        if (parts.cap != nullptr && !walked(StateSection::CapGates))
            missing.push_back(
                static_cast<std::uint32_t>(StateSection::CapGates));
        if (parts.stride != nullptr &&
            !walked(StateSection::StrideGates))
            missing.push_back(
                static_cast<std::uint32_t>(StateSection::StrideGates));
        if (parts.lt != nullptr && !walked(StateSection::LinkTable))
            missing.push_back(
                static_cast<std::uint32_t>(StateSection::LinkTable));
        if (!walked(StateSection::LoadBuffer))
            missing.push_back(
                static_cast<std::uint32_t>(StateSection::LoadBuffer));

        std::uint32_t shortfall = file.declared -
            static_cast<std::uint32_t>(file.sections.size());
        for (std::uint32_t id : missing) {
            if (shortfall == 0)
                break;
            result.droppedSections.push_back(id);
            --shortfall;
        }
        while (shortfall-- > 0)
            result.droppedSections.push_back(0);
    }

    if (auto audited = pred.audit(); !audited) {
        return std::move(audited.error())
            .withContext("auditing restored predictor state");
    }
    return result;
}

Expected<void>
writePredictorState(const AddressPredictor &pred, const std::string &path,
                    const std::vector<StateExtraSection> &extras)
{
    auto encoded = encodePredictorState(pred, extras);
    if (!encoded)
        return std::move(encoded.error()).withContext("writing " + path);
    return writeFileAtomic(path, *encoded);
}

Expected<StateReadResult>
readPredictorState(const std::string &path, AddressPredictor &pred,
                   const StateReadOptions &options,
                   std::vector<StateExtraSection> *extras)
{
    auto bytes = readFileBytes(path);
    if (!bytes)
        return std::move(bytes.error()).withContext("reading " + path);
    auto result = decodePredictorState(*bytes, pred, options, extras);
    if (!result)
        return std::move(result.error()).withContext("reading " + path);
    return result;
}

Expected<StateFileInfo>
inspectStateBytes(std::string_view bytes)
{
    auto walked = walkStateBytes(bytes);
    if (!walked)
        return walked.error();
    StateFileInfo info;
    info.version = walked->version;
    info.predictor = walked->predictor;
    info.sections = walked->declared;
    for (const WalkedSection &section : walked->sections) {
        StateSectionInfo si;
        si.id = section.id;
        si.length = section.payload.size();
        si.intact = section.intact;
        info.sectionInfo.push_back(si);
    }
    info.footerOk = walked->footerOk;
    info.complete = walked->footerOk &&
                    walked->sections.size() == walked->declared;
    for (const WalkedSection &section : walked->sections)
        info.complete = info.complete && section.intact;
    return info;
}

Expected<StateFileInfo>
inspectStateFile(const std::string &path)
{
    auto bytes = readFileBytes(path);
    if (!bytes)
        return std::move(bytes.error()).withContext("inspecting " + path);
    return inspectStateBytes(*bytes);
}

} // namespace clap
