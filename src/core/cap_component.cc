#include "core/cap_component.hh"

namespace clap
{

CapComponent::CapComponent(const CapConfig &config, bool pipelined,
                           LaneArena *arena)
    : config_(config), pipelined_(pipelined), lt_(config, arena)
{
}

std::uint64_t
CapComponent::baseOf(const LoadInfo &info, std::uint64_t addr) const
{
    if (!config_.globalCorrelation)
        return addr;
    // Only the offset LSBs are subtracted; the address MSBs stay in
    // the base, preventing LT aliasing between go-style array lists
    // (section 3.3).
    const std::uint64_t off =
        static_cast<std::uint32_t>(info.immOffset) &
        mask(config_.offsetBits);
    return addr - off;
}

std::uint64_t
CapComponent::addrOf(const LBEntry &entry, std::uint64_t base) const
{
    if (!config_.globalCorrelation)
        return base;
    return base + entry.offsetLsb;
}

bool
CapComponent::pathAllows(const LBEntry &entry, std::uint64_t ghr) const
{
    if (config_.pathBits == 0)
        return true;
    const std::uint64_t path = ghr & mask(config_.pathBits);
    if (config_.perPathConfidence) {
        // Advanced scheme: one accuracy bit per path (2^n bits).
        return (entry.capPathOk >> path) & 1u;
    }
    // Basic scheme: suppress when the current path matches the one
    // recorded at the last misprediction.
    return !(entry.capGhrValid && entry.capGhrPattern == path);
}

void
CapComponent::recordPath(LBEntry &entry, std::uint64_t ghr, bool correct,
                         bool speculated)
{
    if (config_.pathBits == 0)
        return;
    const std::uint64_t path = ghr & mask(config_.pathBits);
    if (config_.perPathConfidence) {
        // Track the accuracy of the most recent prediction on this
        // path. The paper records speculative accesses only; we also
        // learn from suppressed-but-formed predictions so a path can
        // recover once its predictions turn correct again.
        if (correct)
            entry.capPathOk |= (1u << path);
        else if (speculated)
            entry.capPathOk &= ~(1u << path);
        return;
    }
    if (!speculated && !correct)
        return; // only speculated mispredictions are recorded
    if (!correct) {
        entry.capGhrPattern = path;
        entry.capGhrValid = true;
    } else if (entry.capGhrValid && entry.capGhrPattern == path) {
        // A correct prediction on the recorded path lifts the
        // suppression: the indication only reflects the last
        // misprediction (section 3.4).
        entry.capGhrValid = false;
    }
}

CapResult
CapComponent::predict(LBEntry &entry, const LoadInfo &info)
{
    CapResult result;

    if (!entry.capInit) {
        // Nothing known about this load yet; the in-flight instance
        // still counts so the speculative state stays consistent.
        if (pipelined_) {
            ++entry.capPending;
            entry.capSpecStale = true;
        }
        return result;
    }

    const HistoryRegister &hist =
        pipelined_ ? entry.specHist : entry.hist;
    result.histUsed = hist.value();

    const LTLookup lt = lt_.lookup(result.histUsed);
    if (lt.hit) {
        result.hasAddr = true;
        result.addr = addrOf(entry, lt.link);
    }

    // The gate bools are computed individually (pathAllows is pure,
    // so lifting it out of the short-circuit chain changes nothing)
    // to attribute each non-speculated formed prediction to the first
    // failing gate in the paper's order (telemetry only).
    bool confident = true;
    bool conf_ok = true;
    bool tag_ok = true;
    bool path_ok = true;
    if (config_.useConfidence) {
        conf_ok = entry.capConf.atLeast(
            static_cast<std::uint8_t>(config_.confThreshold));
        tag_ok = lt.tagMatch;
        path_ok = pathAllows(entry, info.ghr);
        confident = conf_ok && tag_ok && path_ok;
    } else {
        confident = lt.hit;
    }
    const bool pipe_ok =
        !(pipelined_ && (entry.capBlocked || entry.capSpecStale));
    result.speculate = result.hasAddr && confident && pipe_ok;

    if (result.hasAddr) {
        ++gates_.formed;
        if (result.speculate)
            ++gates_.speculated;
        else if (!conf_ok)
            ++gates_.confVetoes;
        else if (!tag_ok)
            ++gates_.tagVetoes;
        else if (!path_ok)
            ++gates_.pathVetoes;
        else if (!pipe_ok)
            ++gates_.pipeVetoes;
    }

    if (pipelined_) {
        // Maintain the speculative history: assume the prediction is
        // right and fold the predicted base in. With no link to
        // predict from, the speculative history diverges; mark it
        // stale until all pending instances resolve (there is no
        // catch-up mechanism for context predictors, section 5.2).
        if (result.hasAddr) {
            entry.specHist.push(lt.link);
        } else {
            entry.capSpecStale = true;
        }
        ++entry.capPending;
    }
    return result;
}

void
CapComponent::update(LBEntry &entry, const LoadInfo &info,
                     std::uint64_t actual_addr, const CapResult &result,
                     bool allow_lt_update)
{
    if (!entry.capInit) {
        initEntry(entry, info, actual_addr);
        if (pipelined_) {
            if (entry.capPending > 0)
                --entry.capPending;
            if (entry.capPending == 0) {
                entry.specHist.setValue(entry.hist.value());
                entry.capSpecStale = false;
            }
        }
        return;
    }

    const std::uint64_t actual_base = baseOf(info, actual_addr);
    const bool correct =
        result.hasAddr && result.addr == actual_addr;

    // Train the link table with the link (history-before -> base),
    // subject to the PF policy and the hybrid update policy.
    if (allow_lt_update)
        lt_.update(entry.hist.value(), actual_base);

    // Confidence: increment on a correct formed prediction, reset on
    // a wrong one (section 3.4).
    if (result.hasAddr) {
        if (correct)
            entry.capConf.increment();
        else
            entry.capConf.reset();
    }
    if (result.hasAddr)
        recordPath(entry, info.ghr, correct, result.speculate);

    // Architectural history advances at resolution time.
    entry.hist.push(actual_base);

    if (pipelined_) {
        if (entry.capPending > 0)
            --entry.capPending;
        if (result.hasAddr && !correct) {
            // Repair: resync the speculative history to the
            // architectural one and stop speculating until the
            // in-flight (wrong-history) predictions drain.
            entry.specHist.setValue(entry.hist.value());
            entry.capBlocked = true;
        }
        if (entry.capPending == 0) {
            entry.specHist.setValue(entry.hist.value());
            entry.capBlocked = false;
            entry.capSpecStale = false;
        }
    }
}

void
CapComponent::initEntry(LBEntry &entry, const LoadInfo &info,
                        std::uint64_t actual_addr)
{
    entry.offsetLsb = static_cast<std::uint8_t>(
        static_cast<std::uint32_t>(info.immOffset) &
        mask(config_.offsetBits));
    entry.hist = HistoryRegister::forLength(config_.historyBits(),
                                            config_.historyLength);
    entry.specHist = entry.hist;
    entry.capConf = SatCounter(static_cast<unsigned>(config_.confBits), 0);
    entry.capPathOk = ~0u;

    const std::uint64_t actual_base = baseOf(info, actual_addr);
    entry.hist.push(actual_base);
    entry.specHist.push(actual_base);
    entry.capInit = true;
}

} // namespace clap
