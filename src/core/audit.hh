/**
 * @file
 * Structural invariant auditor for the predictor tables. The paper's
 * robustness claim is that all predictor state is speculative — a
 * corrupted entry costs mispredictions, never correctness — but the
 * *simulator* still relies on structural invariants (tag uniqueness
 * within a set, field values within their configured widths, counters
 * within their saturation range) to stay meaningful. audit() checks
 * exactly those invariants and reports the first violation as an
 * ErrorCode::CorruptedState, which the sweep runner classifies as
 * retryable: a fault-injection job whose tables end a trace in an
 * inconsistent state is re-run (with a re-salted fault sequence)
 * instead of silently polluting the sweep's statistics.
 *
 * The checks are read-only (LRU state is not touched) and O(entries),
 * intended to run between traces, not per prediction.
 */

#ifndef CLAP_CORE_AUDIT_HH
#define CLAP_CORE_AUDIT_HH

#include "util/error.hh"

namespace clap
{

class LoadBuffer;
class LinkTable;

/**
 * Check the LB structural invariants: no duplicate valid tags within
 * a set, history registers within their configured widths, and all
 * confidence/selector counters within their saturation range.
 */
Expected<void> auditLoadBuffer(const LoadBuffer &lb);

/**
 * Check the LT structural invariants: no duplicate valid tags within
 * a set, tags within ltTagBits, and PF bits within pfBits.
 */
Expected<void> auditLinkTable(const LinkTable &lt);

} // namespace clap

#endif // CLAP_CORE_AUDIT_HH
