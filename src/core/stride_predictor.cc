#include "core/stride_predictor.hh"

#include "core/audit.hh"

namespace clap
{

Prediction
StridePredictor::predict(const LoadInfo &info)
{
    Prediction pred;
    LBEntry *entry = lb_.lookup(info.pc);
    if (entry) {
        pred.lbHit = true;
    } else {
        // Allocate at predict time so in-flight instance counting
        // starts with the first fetch of the load.
        entry = &lb_.allocate(info.pc);
    }
    pred.lbHandle = lb_.handleOf(*entry);
    const StrideResult result = stride_.predict(*entry, info);
    pred.hasAddress = result.hasAddr;
    pred.speculate = result.speculate;
    pred.addr = result.addr;
    pred.component =
        result.speculate ? Component::Stride : Component::None;
    pred.strideHasAddr = result.hasAddr;
    pred.strideSpec = result.speculate;
    pred.strideAddr = result.addr;
    return pred;
}

void
StridePredictor::update(const LoadInfo &info, std::uint64_t actual_addr,
                        const Prediction &pred)
{
    LBEntry *entry = lb_.acquire(info.pc, pred.lbHandle);
    if (!entry)
        entry = &lb_.allocate(info.pc); // evicted since predict

    StrideResult result;
    result.hasAddr = pred.strideHasAddr;
    result.speculate = pred.strideSpec;
    result.addr = pred.strideAddr;
    stride_.update(*entry, info, actual_addr, result);
}

PredictorTelemetry
StridePredictor::snapshotTelemetry() const
{
    PredictorTelemetry t;
    t.predictor = name();
    fillLoadBufferTelemetry(lb_, t, /*withCap=*/false,
                            /*withStride=*/true,
                            /*withSelector=*/false);
    t.hasStrideGates = true;
    t.strideGates = stride_.gateStats();
    return t;
}

Expected<void>
StridePredictor::audit() const
{
    if (auto v = auditLoadBuffer(lb_); !v)
        return std::move(v.error()).withContext("stride predictor");
    return ok();
}

} // namespace clap
