/**
 * @file
 * Stand-alone CAP predictor: a load buffer plus the CAP component.
 * Used for the figure-9/figure-10 ablations; the paper notes CAP can
 * serve stand-alone since it also captures (short) stride patterns,
 * but should be hybridized for long arrays (section 3.7).
 */

#ifndef CLAP_CORE_CAP_PREDICTOR_HH
#define CLAP_CORE_CAP_PREDICTOR_HH

#include "core/cap_component.hh"
#include "core/config.hh"
#include "core/load_buffer.hh"
#include "core/predictor.hh"

namespace clap
{

/** Stand-alone context-based address predictor. */
class CapPredictor : public AddressPredictor
{
  public:
    /** @throws std::invalid_argument when @p config fails validate(). */
    explicit CapPredictor(const CapPredictorConfig &config)
        : arena_(LoadBuffer::laneBytes(validated(config).lb) +
                 LinkTable::laneBytes(config.cap)),
          lb_(config.lb, &arena_),
          cap_(config.cap, config.pipelined, &arena_)
    {
    }

    Prediction predict(const LoadInfo &info) override;
    void update(const LoadInfo &info, std::uint64_t actual_addr,
                const Prediction &pred) override;
    std::string name() const override { return "cap"; }

    /** LB + LT structural invariants (core/audit.hh). */
    Expected<void> audit() const override;

    /** LB/LT occupancy, cap confidence hist, gate vetoes. */
    PredictorTelemetry snapshotTelemetry() const override;

    LoadBuffer &loadBuffer() { return lb_; }
    const LoadBuffer &loadBuffer() const { return lb_; }
    CapComponent &component() { return cap_; }
    const CapComponent &component() const { return cap_; }

  private:
    LaneArena arena_; ///< one contiguous block for the LB + LT lanes
    LoadBuffer lb_;
    CapComponent cap_;
};

} // namespace clap

#endif // CLAP_CORE_CAP_PREDICTOR_HH
