/**
 * @file
 * Probe-lane primitives for the struct-of-arrays table layout shared
 * by the LoadBuffer and the LinkTable: a 64-byte-aligned bump arena
 * so all hot lanes of one predictor live in one contiguous block, a
 * packed per-way control byte (valid bit + 7-bit tag fingerprint),
 * and a multi-tag compare that probes every way of a set at once.
 *
 * The compare has three implementations behind one entry point:
 *
 *  - SSE2 (any x86-64): `pcmpeqb` + `pmovmskb` over the control word,
 *    exact byte equality.
 *  - NEON (aarch64): `vceq_u8`, then the byte mask is compressed the
 *    SWAR way.
 *  - Portable SWAR: broadcast-XOR then Mycroft's zero-byte trick
 *    `(x - 0x01..) & ~x & 0x80..`. This flags every matching byte but
 *    may also flag a byte just above a match (borrow propagation), so
 *    callers MUST confirm each candidate against the full tag lane —
 *    which they do anyway, because the fingerprint is only 7 bits.
 *
 * All three return a way bitmask whose set bits are iterated in
 * ascending order, preserving the scalar first-match semantics after
 * full-tag confirmation. Invalid ways (control byte 0x00) can never
 * be flagged: every probe target has the valid bit (0x80) set, exact
 * compares never equal 0x00, and the SWAR residue `0x00 ^ target`
 * keeps its high bit, which the trick masks out.
 */

#ifndef CLAP_CORE_PROBE_LANES_HH
#define CLAP_CORE_PROBE_LANES_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>

#include "util/bits.hh"

#if defined(__SSE2__)
#include <emmintrin.h>
#define CLAP_PROBE_SSE2 1
#elif defined(__aarch64__) || defined(__ARM_NEON)
#include <arm_neon.h>
#define CLAP_PROBE_NEON 1
#endif

namespace clap
{

/** Hint the cache to pull @p addr for a read (no-op off GCC/Clang). */
inline void
prefetchRead(const void *addr)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
    (void)addr;
#endif
}

/**
 * A fixed-capacity, 64-byte-aligned bump allocator backing the probe
 * lanes. One arena per predictor keeps the LB and LT lanes of a shard
 * in one contiguous block; a table built without an external arena
 * carries its own, sized by its laneBytes(). Returned lanes are
 * zero-initialized. Exceeding the capacity is a sizing bug in the
 * caller's laneBytes() and throws.
 */
class LaneArena
{
  public:
    static constexpr std::size_t kAlign = 64;

    explicit LaneArena(std::size_t bytes)
        : capacity_(static_cast<std::size_t>(
              alignUp(bytes == 0 ? kAlign : bytes, kAlign)))
    {
        storage_ = std::make_unique<unsigned char[]>(capacity_ + kAlign);
        const auto raw =
            reinterpret_cast<std::uintptr_t>(storage_.get());
        base_ = storage_.get() +
                (static_cast<std::size_t>(alignUp(raw, kAlign)) - raw);
        std::memset(base_, 0, capacity_);
    }

    LaneArena(const LaneArena &) = delete;
    LaneArena &operator=(const LaneArena &) = delete;

    /** Bytes one lane of @p count elements consumes (64B-rounded). */
    template <typename T>
    static constexpr std::size_t
    laneBytes(std::size_t count)
    {
        return static_cast<std::size_t>(alignUp(count * sizeof(T),
                                                kAlign));
    }

    /** Carve a zeroed, 64-byte-aligned lane of @p count elements. */
    template <typename T>
    T *
    alloc(std::size_t count)
    {
        const std::size_t bytes = laneBytes<T>(count);
        if (capacity_ - used_ < bytes) {
            throw std::logic_error(
                "LaneArena overflow: lane of " + std::to_string(bytes) +
                " bytes exceeds the " + std::to_string(capacity_) +
                "-byte arena (used " + std::to_string(used_) + ")");
        }
        T *lane = reinterpret_cast<T *>(base_ + used_);
        used_ += bytes;
        return lane;
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t used() const { return used_; }

  private:
    std::unique_ptr<unsigned char[]> storage_;
    unsigned char *base_ = nullptr;
    std::size_t capacity_ = 0;
    std::size_t used_ = 0;
};

namespace probe
{

constexpr std::uint64_t kLsbBytes = 0x0101010101010101ull;
constexpr std::uint64_t kMsbBytes = 0x8080808080808080ull;

/**
 * Control byte for a resident way: valid bit (0x80) over a 7-bit
 * multiplicative fingerprint of the full tag. Equal tags always hash
 * equal, so a fingerprint mismatch proves a tag mismatch; candidates
 * are confirmed against the full tag lane (~1/128 false positives).
 */
inline std::uint8_t
ctrlByte(std::uint64_t tag)
{
    return static_cast<std::uint8_t>(
        0x80u | ((tag * 0x9e3779b97f4a7c15ull) >> 57));
}

/** Compress a per-byte high-bit mask into a per-way bitmask. */
inline std::uint32_t
compressByteMask(std::uint64_t byte_mask)
{
    std::uint32_t ways = 0;
    while (byte_mask != 0) {
        ways |= 1u << (std::countr_zero(byte_mask) >> 3);
        byte_mask &= byte_mask - 1;
    }
    return ways;
}

/**
 * Portable SWAR candidate scan: the ways of @p ctrl_word whose control
 * byte equals @p target, as a bitmask (bit w = way w), possibly with
 * extra false-positive ways (see the file header). Always compiled so
 * the differential tests cover it on every platform.
 */
inline std::uint32_t
candidateWaysSwar(std::uint64_t ctrl_word, std::uint8_t target)
{
    const std::uint64_t x = ctrl_word ^ (kLsbBytes * target);
    return compressByteMask((x - kLsbBytes) & ~x & kMsbBytes);
}

/**
 * Candidate ways of one packed control word: the dispatch point the
 * tables probe through. Exact on SSE2; exact on NEON; SWAR otherwise
 * (callers confirm candidates against the full tag lane regardless).
 */
inline std::uint32_t
candidateWays(std::uint64_t ctrl_word, std::uint8_t target)
{
#if defined(CLAP_PROBE_SSE2)
    const __m128i word =
        _mm_cvtsi64_si128(static_cast<long long>(ctrl_word));
    const __m128i wanted = _mm_set1_epi8(static_cast<char>(target));
    return static_cast<std::uint32_t>(
               _mm_movemask_epi8(_mm_cmpeq_epi8(word, wanted))) &
           0xffu;
#elif defined(CLAP_PROBE_NEON)
    const uint8x8_t word = vcreate_u8(ctrl_word);
    const uint8x8_t wanted = vdup_n_u8(target);
    const std::uint64_t eq =
        vget_lane_u64(vreinterpret_u64_u8(vceq_u8(word, wanted)), 0);
    return compressByteMask(eq & kMsbBytes);
#else
    return candidateWaysSwar(ctrl_word, target);
#endif
}

} // namespace probe

} // namespace clap

#endif // CLAP_CORE_PROBE_LANES_HH
