/**
 * @file
 * The shift(m)-xor history register of section 3.2: the compressed
 * record of the last few (base) addresses of a static load, used to
 * index and tag the link table. On each update the register is
 * shifted left by m bits and xored with the new address' least
 * significant bits excluding the bottom two ("which only matter on
 * unaligned accesses"), then truncated. The shift naturally ages old
 * addresses out of the register.
 */

#ifndef CLAP_CORE_HISTORY_HH
#define CLAP_CORE_HISTORY_HH

#include <cassert>
#include <cstdint>

#include "util/bits.hh"

namespace clap
{

/**
 * Compressed address history. The effective "history length" (number
 * of past addresses that still influence the value) is
 * ceil(bits / shift): an address is fully shifted out after that many
 * pushes.
 */
class HistoryRegister
{
  public:
    HistoryRegister() = default;

    /**
     * @param num_bits History width in bits (= LT index + tag bits).
     * @param shift    Left shift per push (m of shift(m)-xor).
     */
    HistoryRegister(unsigned num_bits, unsigned shift)
        : bits_(num_bits), shift_(shift)
    {
        assert(num_bits >= 1 && num_bits <= 63);
        assert(shift >= 1);
    }

    /**
     * Compute the shift/xor parameters for a requested history
     * length: shift = ceil(bits / length), clamped to >= 1.
     */
    static HistoryRegister
    forLength(unsigned num_bits, unsigned history_length)
    {
        assert(history_length >= 1);
        const unsigned shift =
            (num_bits + history_length - 1) / history_length;
        return HistoryRegister(num_bits, shift < 1 ? 1 : shift);
    }

    /** Fold a new address into the history. */
    void
    push(std::uint64_t addr)
    {
        value_ = ((value_ << shift_) ^ (addr >> 2)) & mask(bits_);
    }

    /** Current compressed history value. */
    std::uint64_t value() const { return value_; }

    /** Overwrite the raw value (speculative-state repair). */
    void setValue(std::uint64_t value) { value_ = value & mask(bits_); }

    /** Reset to the empty history. */
    void clear() { value_ = 0; }

    unsigned numBits() const { return bits_; }
    unsigned shiftAmount() const { return shift_; }

    /** Addresses retained before being fully shifted out. */
    unsigned
    effectiveLength() const
    {
        return (bits_ + shift_ - 1) / shift_;
    }

  private:
    std::uint64_t value_ = 0;
    unsigned bits_ = 20;
    unsigned shift_ = 5;
};

} // namespace clap

#endif // CLAP_CORE_HISTORY_HH
