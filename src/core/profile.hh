/**
 * @file
 * Profile feedback / software assist (paper section 6, future work):
 * "let the compiler/profiler classify loads according to the expected
 * address pattern: last value, stride, context based, unknown. This
 * reduces warm-up time, helps reducing predictor size, and eliminates
 * prediction table pollution."
 *
 * LoadClassifier is the profiler: it measures, per static load, how
 * predictable the address stream is under each model over a training
 * trace. ProfileAssistedPredictor consumes the resulting class map:
 * loads classified Unknown never enter the tables (pollution
 * elimination), Stride loads skip link-table updates (space saving),
 * and only Context/Constant loads train the CAP component.
 */

#ifndef CLAP_CORE_PROFILE_HH
#define CLAP_CORE_PROFILE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/hybrid_predictor.hh"
#include "core/predictor.hh"

namespace clap
{

/** Address-pattern class of a static load. */
enum class LoadClass : std::uint8_t
{
    Unknown,  ///< no model predicts it: keep it out of the tables
    Constant, ///< last-address predictable
    Stride,   ///< stride predictable (and not constant)
    Context,  ///< context predictable (and not stride)
};

/** Printable name of a load class. */
const char *loadClassName(LoadClass cls);

/** Classification thresholds. */
struct ClassifierConfig
{
    /// Minimum dynamic instances before a load is classified at all
    /// (fewer stay Unknown).
    std::uint64_t minInstances = 16;

    /// A model must predict at least this fraction of a load's
    /// instances to classify the load under it.
    double threshold = 0.7;

    /// Context-model history length used during profiling.
    unsigned historyLength = 4;
};

/**
 * Offline profiler: observe() every dynamic load of a training run,
 * then classify() per static load. The measurement is exact (per-PC
 * bookkeeping, no table capacity effects), which matches what a
 * compiler/profiler could compute from a trace.
 */
class LoadClassifier
{
  public:
    explicit LoadClassifier(const ClassifierConfig &config = {})
        : config_(config)
    {
    }

    /** Record one dynamic instance of the load at @p pc. */
    void observe(std::uint64_t pc, std::uint64_t addr);

    /** Class of the load at @p pc given everything observed. */
    LoadClass classify(std::uint64_t pc) const;

    /** Classify every observed static load. */
    std::unordered_map<std::uint64_t, LoadClass> classifyAll() const;

    /** Number of distinct static loads observed. */
    std::size_t staticLoads() const { return loads_.size(); }

  private:
    struct PerLoad
    {
        std::uint64_t instances = 0;
        std::uint64_t lastHits = 0;
        std::uint64_t strideHits = 0;
        std::uint64_t contextHits = 0;
        std::uint64_t lastAddr = 0;
        std::int64_t stride = 0;
        bool lastValid = false;
        bool strideValid = false;
        std::uint64_t hist = 0;
        /// Exact context model: compressed history -> next address.
        std::unordered_map<std::uint64_t, std::uint64_t> links;
    };

    ClassifierConfig config_;
    std::unordered_map<std::uint64_t, PerLoad> loads_;
};

/**
 * A hybrid predictor gated by a profile-derived class map:
 *  - Unknown loads are filtered out entirely: they never allocate LB
 *    entries, never update the LT, never speculate.
 *  - Stride/Constant loads do not update the link table (it is
 *    reserved for the context loads that need it).
 *  - Loads absent from the map are treated as Unknown.
 */
class ProfileAssistedPredictor : public AddressPredictor
{
  public:
    ProfileAssistedPredictor(
        const HybridConfig &config,
        std::unordered_map<std::uint64_t, LoadClass> classes);

    Prediction predict(const LoadInfo &info) override;
    void update(const LoadInfo &info, std::uint64_t actual_addr,
                const Prediction &pred) override;
    std::string name() const override { return "profile-hybrid"; }

    /** Loads filtered out by the profile (diagnostics). */
    std::uint64_t filteredLoads() const { return filtered_; }

    /** Delegates to the wrapped hybrid (its name is reported). */
    PredictorTelemetry
    snapshotTelemetry() const override
    {
        PredictorTelemetry t = hybrid_.snapshotTelemetry();
        t.predictor = name();
        return t;
    }

  private:
    LoadClass classOf(std::uint64_t pc) const;

    HybridPredictor hybrid_;
    std::unordered_map<std::uint64_t, LoadClass> classes_;
    std::uint64_t filtered_ = 0;
};

/**
 * Convenience: profile @p training_trace and build a
 * ProfileAssistedPredictor for it.
 */
std::unique_ptr<ProfileAssistedPredictor>
buildProfiledPredictor(const class Trace &training_trace,
                       const HybridConfig &config,
                       const ClassifierConfig &classifier_config = {});

} // namespace clap

#endif // CLAP_CORE_PROFILE_HH
