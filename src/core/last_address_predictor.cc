#include "core/last_address_predictor.hh"

namespace clap
{

Prediction
LastAddressPredictor::predict(const LoadInfo &info)
{
    Prediction pred;
    LBEntry *entry = lb_.lookup(info.pc);
    if (!entry) {
        lb_.allocate(info.pc);
        return pred;
    }

    pred.lbHit = true;
    if (entry->lastValid) {
        pred.hasAddress = true;
        pred.addr = entry->lastAddr;
        pred.speculate = entry->strideConf.atLeast(
            static_cast<std::uint8_t>(config_.confThreshold));
        pred.component =
            pred.speculate ? Component::Last : Component::None;
    }
    return pred;
}

void
LastAddressPredictor::update(const LoadInfo &info,
                             std::uint64_t actual_addr,
                             const Prediction &pred)
{
    LBEntry *entry = lb_.lookup(info.pc);
    if (!entry)
        entry = &lb_.allocate(info.pc);
    if (!entry->lastValid) {
        entry->lastAddr = actual_addr;
        entry->lastValid = true;
        entry->strideConf =
            SatCounter(static_cast<unsigned>(config_.confBits), 0);
        return;
    }

    if (pred.hasAddress) {
        if (pred.addr == actual_addr)
            entry->strideConf.increment();
        else
            entry->strideConf.reset();
    }
    entry->lastAddr = actual_addr;
    entry->lastValid = true;
}

PredictorTelemetry
LastAddressPredictor::snapshotTelemetry() const
{
    PredictorTelemetry t;
    t.predictor = name();
    // The last-address confidence counter lives in the shared
    // strideConf field, so the stride histogram reports it.
    fillLoadBufferTelemetry(lb_, t, /*withCap=*/false,
                            /*withStride=*/true,
                            /*withSelector=*/false);
    return t;
}

} // namespace clap
