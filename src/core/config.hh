/**
 * @file
 * Configuration knobs for all predictor variants. Defaults reproduce
 * the paper's baseline (section 4.2): 4K-entry 2-way load buffer,
 * 4K-entry direct-mapped link table with 8-bit tags and PF bits, base
 * addresses (global correlation), control-flow indications, history
 * length 4, and an enhanced stride component with interval counters.
 */

#ifndef CLAP_CORE_CONFIG_HH
#define CLAP_CORE_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/bits.hh"
#include "util/error.hh"

namespace clap
{

namespace detail
{

/** Validation-failure factory shared by the validate() methods. */
inline Error
configError(const char *structName, std::string message)
{
    return makeError(ErrorCode::InvalidConfig, std::move(message))
        .withContext(std::string("validating ") + structName);
}

} // namespace detail

/** Load buffer geometry (shared by all predictor components). */
struct LoadBufferConfig
{
    std::size_t entries = 4096;
    unsigned assoc = 2;

    std::size_t sets() const { return entries / assoc; }

    /** Structural sanity checks; call before building a LoadBuffer. */
    Expected<void>
    validate() const
    {
        if (entries == 0 || !isPowerOf2(entries)) {
            return detail::configError(
                "LoadBufferConfig",
                "entries must be a non-zero power of two, got " +
                    std::to_string(entries));
        }
        if (assoc == 0 || entries % assoc != 0) {
            return detail::configError(
                "LoadBufferConfig",
                "assoc must be >= 1 and divide entries (entries=" +
                    std::to_string(entries) + ", assoc=" +
                    std::to_string(assoc) + ")");
        }
        // The table indexes sets with a mask, so both the
        // associativity and the set count must be powers of two
        // (implied by the checks above, asserted explicitly so a
        // relaxation of either check cannot silently break indexing).
        if (!isPowerOf2(assoc) || !isPowerOf2(sets())) {
            return detail::configError(
                "LoadBufferConfig",
                "assoc and entries/assoc must be powers of two "
                "(mask-based set indexing), got assoc=" +
                    std::to_string(assoc) + ", sets=" +
                    std::to_string(sets()));
        }
        return ok();
    }
};

/** Context-based (CAP) component configuration (section 3). */
struct CapConfig
{
    /// Link-table entries (direct-mapped; associativity is possible
    /// via tags but the paper found it low-impact).
    std::size_t ltEntries = 4096;

    /// LT tag bits taken from the history MSBs (0 disables tags).
    unsigned ltTagBits = 8;

    /// LT associativity. 1 = direct-mapped (the paper's baseline —
    /// "the LT associativity has low impact on performance").
    /// Values > 1 require ltTagBits > 0 to match ways.
    unsigned ltAssoc = 1;

    /// Decoupled PF table (section 3.5): keep the PF bits in a
    /// separate direct-mapped table indexed with the extended history
    /// (index + tag bits), "enabling a finer granularity in
    /// preventing harmful LT updates". 0 keeps the PF bits inside
    /// the LT entries; otherwise this is the log2 of the PF-table
    /// entry count.
    unsigned pfTableBits = 0;

    /// Number of past addresses the history should retain.
    unsigned historyLength = 4;

    /// Record base addresses (address - offset LSBs) instead of full
    /// addresses: the global-correlation mechanism of section 3.3.
    bool globalCorrelation = true;

    /// LSBs of the immediate offset kept in the LB (section 3.3:
    /// "typically the 8 LSBs").
    unsigned offsetBits = 8;

    /// Pollution-free bits per LT entry (bits 2..2+pfBits-1 of the
    /// base address); 0 disables the mechanism (section 3.5).
    unsigned pfBits = 4;

    /// Saturating-counter confidence (section 3.4).
    unsigned confBits = 2;
    unsigned confThreshold = 2;

    /// Master confidence switch; figure 9 measures raw predictability
    /// with all confidence filtering off.
    bool useConfidence = true;

    /// Control-flow indication bits (GHR LSBs recorded on a
    /// misprediction); 0 disables (section 3.4).
    unsigned pathBits = 4;

    /// Advanced per-path scheme: 2^pathBits accuracy bits instead of
    /// the single last-misprediction pattern.
    bool perPathConfidence = false;

    unsigned ltIndexBits() const { return floorLog2(ltEntries); }
    unsigned historyBits() const { return ltIndexBits() + ltTagBits; }

    /** Structural sanity checks; call before building the component. */
    Expected<void>
    validate() const
    {
        if (ltEntries == 0 || !isPowerOf2(ltEntries)) {
            return detail::configError(
                "CapConfig",
                "ltEntries must be a non-zero power of two, got " +
                    std::to_string(ltEntries));
        }
        if (ltAssoc == 0 || ltEntries % ltAssoc != 0 ||
            ltAssoc > ltEntries) {
            return detail::configError(
                "CapConfig",
                "ltAssoc must be >= 1 and divide ltEntries (ltEntries=" +
                    std::to_string(ltEntries) + ", ltAssoc=" +
                    std::to_string(ltAssoc) + ")");
        }
        if (ltAssoc > 1 && ltTagBits == 0) {
            return detail::configError(
                "CapConfig",
                "ltAssoc > 1 requires ltTagBits > 0 to match ways");
        }
        // Mask-based set indexing (see LoadBufferConfig): keep the
        // power-of-two requirement explicit.
        if (!isPowerOf2(ltAssoc) ||
            !isPowerOf2(ltEntries / ltAssoc)) {
            return detail::configError(
                "CapConfig",
                "ltAssoc and ltEntries/ltAssoc must be powers of two "
                "(mask-based set indexing), got ltAssoc=" +
                    std::to_string(ltAssoc) + ", sets=" +
                    std::to_string(ltEntries / ltAssoc));
        }
        if (historyLength == 0) {
            return detail::configError("CapConfig",
                                       "historyLength must be >= 1");
        }
        if (historyBits() < 1 || historyBits() > 63) {
            return detail::configError(
                "CapConfig",
                "history width (ltIndexBits + ltTagBits) must be within "
                "1..63, got " + std::to_string(historyBits()));
        }
        if (confBits < 1 || confBits > 8) {
            return detail::configError(
                "CapConfig", "confBits must be within 1..8, got " +
                                 std::to_string(confBits));
        }
        if (confThreshold > mask(confBits)) {
            return detail::configError(
                "CapConfig",
                "confThreshold " + std::to_string(confThreshold) +
                    " unreachable by a " + std::to_string(confBits) +
                    "-bit counter");
        }
        if (offsetBits > 8) {
            return detail::configError(
                "CapConfig",
                "offsetBits must be <= 8 (stored in a byte), got " +
                    std::to_string(offsetBits));
        }
        if (pfBits > 6) {
            return detail::configError(
                "CapConfig",
                "pfBits must be <= 6 (bits 2..7 of the base), got " +
                    std::to_string(pfBits));
        }
        if (pfTableBits > 30) {
            return detail::configError(
                "CapConfig", "pfTableBits must be <= 30, got " +
                                 std::to_string(pfTableBits));
        }
        const unsigned max_path = perPathConfidence ? 5 : 63;
        if (pathBits > max_path) {
            return detail::configError(
                "CapConfig",
                "pathBits must be <= " + std::to_string(max_path) +
                    (perPathConfidence ? " with perPathConfidence"
                                       : "") +
                    ", got " + std::to_string(pathBits));
        }
        return ok();
    }
};

/** Enhanced stride component configuration (sections 4, 5.2). */
struct StrideConfig
{
    unsigned confBits = 2;
    unsigned confThreshold = 2;

    /// Two-delta stride update (a new stride must be seen twice).
    bool twoDelta = true;

    /// Interval counters: learn the run length and stop speculating
    /// at the learned boundary (trades mispredictions for
    /// no-predictions).
    bool useInterval = true;

    /// Minimum run length worth learning as an interval; shorter runs
    /// indicate an irregular load rather than an array boundary.
    unsigned minInterval = 4;

    /// Control-flow indication bits (0 disables).
    unsigned pathBits = 4;

    /// Pipelined catch-up: extrapolate stride x pending instances
    /// after a misprediction (section 5.2).
    bool catchUp = true;

    /** Structural sanity checks; call before building the component. */
    Expected<void>
    validate() const
    {
        if (confBits < 1 || confBits > 8) {
            return detail::configError(
                "StrideConfig", "confBits must be within 1..8, got " +
                                    std::to_string(confBits));
        }
        if (confThreshold > mask(confBits)) {
            return detail::configError(
                "StrideConfig",
                "confThreshold " + std::to_string(confThreshold) +
                    " unreachable by a " + std::to_string(confBits) +
                    "-bit counter");
        }
        if (pathBits > 63) {
            return detail::configError(
                "StrideConfig", "pathBits must be <= 63, got " +
                                    std::to_string(pathBits));
        }
        if (useInterval && minInterval == 0) {
            return detail::configError(
                "StrideConfig",
                "minInterval must be >= 1 when intervals are enabled");
        }
        return ok();
    }
};

/** Link-table update policies studied in section 4.3. */
enum class LtUpdatePolicy : std::uint8_t
{
    Always,               ///< update on every load resolution
    UnlessStrideCorrect,  ///< skip when the stride component was right
    UnlessStrideSelected, ///< skip when stride was right AND selected
};

/** Hybrid CAP/stride configuration (section 3.7). */
struct HybridConfig
{
    LoadBufferConfig lb;
    CapConfig cap;
    StrideConfig stride;

    LtUpdatePolicy ltUpdatePolicy = LtUpdatePolicy::Always;

    /// Selector counter initial value: 2 = weak CAP on a 2-bit
    /// counter ("initially biased towards weak CAP selection").
    std::uint8_t selectorInit = 2;

    /// Model the prediction gap (section 5): predictions are resolved
    /// by update() calls that arrive later, so the predictors must
    /// maintain speculative state.
    bool pipelined = false;

    /** Validate all sub-configs plus hybrid-level invariants. */
    Expected<void>
    validate() const
    {
        if (auto v = lb.validate(); !v)
            return std::move(v.error()).withContext("HybridConfig.lb");
        if (auto v = cap.validate(); !v)
            return std::move(v.error()).withContext("HybridConfig.cap");
        if (auto v = stride.validate(); !v) {
            return std::move(v.error())
                .withContext("HybridConfig.stride");
        }
        if (selectorInit > 3) {
            return detail::configError(
                "HybridConfig",
                "selectorInit must fit the 2-bit selector (0..3), got " +
                    std::to_string(selectorInit));
        }
        return ok();
    }
};

/** Stand-alone CAP predictor configuration. */
struct CapPredictorConfig
{
    LoadBufferConfig lb;
    CapConfig cap;
    bool pipelined = false;

    Expected<void>
    validate() const
    {
        if (auto v = lb.validate(); !v) {
            return std::move(v.error())
                .withContext("CapPredictorConfig.lb");
        }
        if (auto v = cap.validate(); !v) {
            return std::move(v.error())
                .withContext("CapPredictorConfig.cap");
        }
        return ok();
    }
};

/** Stand-alone enhanced-stride predictor configuration. */
struct StridePredictorConfig
{
    LoadBufferConfig lb;
    StrideConfig stride;
    bool pipelined = false;

    Expected<void>
    validate() const
    {
        if (auto v = lb.validate(); !v) {
            return std::move(v.error())
                .withContext("StridePredictorConfig.lb");
        }
        if (auto v = stride.validate(); !v) {
            return std::move(v.error())
                .withContext("StridePredictorConfig.stride");
        }
        return ok();
    }
};

/** Last-address predictor configuration (prior-art baseline). */
struct LastAddressConfig
{
    LoadBufferConfig lb;
    unsigned confBits = 2;
    unsigned confThreshold = 2;

    Expected<void>
    validate() const
    {
        if (auto v = lb.validate(); !v) {
            return std::move(v.error())
                .withContext("LastAddressConfig.lb");
        }
        if (confBits < 1 || confBits > 8) {
            return detail::configError(
                "LastAddressConfig",
                "confBits must be within 1..8, got " +
                    std::to_string(confBits));
        }
        if (confThreshold > mask(confBits)) {
            return detail::configError(
                "LastAddressConfig",
                "confThreshold " + std::to_string(confThreshold) +
                    " unreachable by a " + std::to_string(confBits) +
                    "-bit counter");
        }
        return ok();
    }
};

/**
 * Gate for predictor constructors: pass the config through unchanged
 * when it validates, throw std::invalid_argument (carrying the full
 * Error diagnostic) otherwise. Callers who prefer the error-code path
 * should call validate() themselves before constructing.
 */
template <typename Config>
const Config &
validated(const Config &config)
{
    if (auto v = config.validate(); !v)
        throw std::invalid_argument(v.error().str());
    return config;
}

} // namespace clap

#endif // CLAP_CORE_CONFIG_HH
