#include "core/stride_component.hh"

namespace clap
{

bool
StrideComponent::pathAllows(const LBEntry &entry, std::uint64_t ghr) const
{
    if (config_.pathBits == 0)
        return true;
    const std::uint64_t path = ghr & mask(config_.pathBits);
    return !(entry.strideGhrValid && entry.strideGhrPattern == path);
}

StrideResult
StrideComponent::predict(LBEntry &entry, const LoadInfo &info)
{
    StrideResult result;
    if (!entry.lastValid) {
        // The in-flight instance still counts even before the first
        // resolution initializes the entry.
        if (pipelined_)
            ++entry.stridePending;
        return result;
    }

    // In the pipelined model, predict off the last *predicted*
    // address so several instances can be in flight; after a
    // misprediction the catch-up mechanism re-bases specLastAddr.
    const std::uint64_t base =
        pipelined_ ? entry.specLastAddr : entry.lastAddr;
    result.hasAddr = true;
    result.addr = base + static_cast<std::uint64_t>(entry.stride);

    // Gate cascade with first-failure attribution (telemetry only;
    // later gates are evaluated exactly when they were before).
    bool confident = entry.strideConf.atLeast(
        static_cast<std::uint8_t>(config_.confThreshold));
    const bool conf_ok = confident;
    bool interval_ok = true;
    bool path_ok = true;
    if (confident && config_.useInterval && entry.intervalValid &&
        entry.run + (pipelined_ ? entry.stridePending : 0) >=
            entry.interval) {
        // At the learned boundary: predict but do not speculate
        // (trading a misprediction for a no-prediction).
        confident = false;
        interval_ok = false;
    }
    if (confident && !pathAllows(entry, info.ghr)) {
        confident = false;
        path_ok = false;
    }
    const bool pipe_ok = !(pipelined_ && entry.strideBlocked);
    result.speculate = confident && pipe_ok;

    ++gates_.formed;
    if (result.speculate)
        ++gates_.speculated;
    else if (!conf_ok)
        ++gates_.confVetoes;
    else if (!interval_ok)
        ++gates_.intervalVetoes;
    else if (!path_ok)
        ++gates_.pathVetoes;
    else if (!pipe_ok)
        ++gates_.pipeVetoes;

    if (pipelined_) {
        entry.specLastAddr = result.addr;
        ++entry.stridePending;
    }
    return result;
}

void
StrideComponent::update(LBEntry &entry, const LoadInfo &info,
                        std::uint64_t actual_addr,
                        const StrideResult &result)
{
    const bool correct = result.hasAddr && result.addr == actual_addr;

    if (entry.lastValid) {
        const std::int64_t delta = static_cast<std::int64_t>(
            actual_addr - entry.lastAddr);
        if (delta == entry.stride) {
            entry.strideConf.increment();
        } else {
            // Two-delta: commit a new stride only when the same delta
            // is observed twice in a row (candStride always tracks
            // the previous delta).
            if (!config_.twoDelta || delta == entry.candStride)
                entry.stride = delta;
            entry.strideConf.reset();
        }
        entry.candStride = delta;
    }

    // Interval tracking: run counts consecutive correct formed
    // predictions; a break after a long run records the run length as
    // the interval (array length). A break after a short run means
    // the load is irregular, so forget the interval.
    if (result.hasAddr) {
        if (correct) {
            ++entry.run;
            if (config_.useInterval && entry.intervalValid &&
                entry.run > entry.interval) {
                // The array grew past the learned boundary: widen.
                entry.interval = entry.run;
            }
        } else {
            if (config_.useInterval) {
                if (entry.run >= config_.minInterval) {
                    entry.interval = entry.run;
                    entry.intervalValid = true;
                } else {
                    entry.intervalValid = false;
                }
            }
            entry.run = 0;
        }
    }

    if (config_.pathBits != 0) {
        const std::uint64_t path = info.ghr & mask(config_.pathBits);
        if (result.speculate && !correct) {
            // Record the control-flow context of the misprediction.
            entry.strideGhrPattern = path;
            entry.strideGhrValid = true;
        } else if (result.hasAddr && correct && entry.strideGhrValid &&
                   entry.strideGhrPattern == path) {
            // The recorded path predicts correctly again: stop
            // suppressing it (the indication only reflects the last
            // misprediction, section 3.4).
            entry.strideGhrValid = false;
        }
    }

    const bool first_resolution = !entry.lastValid;
    entry.lastAddr = actual_addr;
    entry.lastValid = true;

    if (pipelined_) {
        if (entry.stridePending > 0)
            --entry.stridePending;
        if (first_resolution && entry.stridePending > 0) {
            // Best effort for the still-uninitialized in-flight
            // window: predict forward from the first resolved
            // address (the stride is still 0 at this point).
            entry.specLastAddr = actual_addr;
        }
        if (result.hasAddr && !correct) {
            if (config_.catchUp) {
                // Catch-up (section 5.2): extrapolate the known
                // stride over the still-pending instances so
                // subsequent predictions are immediately right again.
                entry.specLastAddr = actual_addr +
                    static_cast<std::uint64_t>(
                        entry.stride *
                        static_cast<std::int64_t>(entry.stridePending));
                entry.strideBlocked = false;
            } else {
                entry.strideBlocked = true;
            }
        }
        if (entry.stridePending == 0) {
            entry.specLastAddr = actual_addr;
            entry.strideBlocked = false;
        }
    }
}

void
StrideComponent::initEntry(LBEntry &entry, std::uint64_t actual_addr)
{
    entry.lastAddr = actual_addr;
    entry.specLastAddr = actual_addr;
    entry.lastValid = true;
    entry.stride = 0;
    entry.candStride = 0;
    entry.strideConf =
        SatCounter(static_cast<unsigned>(config_.confBits), 0);
}

} // namespace clap
