/**
 * @file
 * The Load Buffer (LB): the per-static-load first-level table shared
 * by the CAP and stride components of the hybrid predictor (sections
 * 3.1 and 3.7). Set-associative, PC-tagged, LRU-replaced.
 *
 * The table is laid out struct-of-arrays (DESIGN.md section 8): the
 * probe state lives in dense lanes — a packed control word per set
 * (one valid+fingerprint byte per way, probed with the multi-tag
 * compare of core/probe_lanes.hh), a full-tag lane, and an LRU-stamp
 * lane — while the bulk per-entry state (the CAP fields, the stride
 * fields, the hybrid selector) stays in an array-of-structs cold lane
 * touched only on hit. All hot lanes come from one LaneArena, shared
 * with the link table when the owning predictor provides one.
 *
 * Every observable behavior — lookup/acquire/allocate semantics, LRU
 * stamps, generation handles, entry images — is bit-for-bit identical
 * to the scalar array-of-structs implementation; the differential
 * fuzz tests in tests/test_probe_lanes.cc hold the two to equality.
 */

#ifndef CLAP_CORE_LOAD_BUFFER_HH
#define CLAP_CORE_LOAD_BUFFER_HH

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hh"
#include "core/history.hh"
#include "core/predictor.hh"
#include "core/probe_lanes.hh"
#include "util/bits.hh"
#include "util/sat_counter.hh"

namespace clap
{

/**
 * The cold bulk state of one load-buffer entry: everything the
 * components read or write after the probe has resolved. The probe
 * state (valid, tag, LRU stamp) lives in the LoadBuffer's lanes; use
 * LBEntryImage / LoadBuffer::imageAt() when a full flat view is
 * needed (serialization, audit, fault injection).
 */
struct LBEntry
{
    /// @name Shared fields
    /// @{
    std::uint8_t offsetLsb = 0; ///< 8 LSBs of the immediate offset
    /// @}

    /// @name CAP fields (section 3)
    /// @{
    bool capInit = false;     ///< first resolution seen (fields valid)
    HistoryRegister hist;     ///< architectural history (updated at
                              ///< resolution time)
    HistoryRegister specHist; ///< speculative history (pipelined mode)
    SatCounter capConf{2, 0};
    std::uint64_t capGhrPattern = 0; ///< last-mispredict GHR pattern
    bool capGhrValid = false;
    std::uint32_t capPathOk = ~0u;   ///< per-path accuracy bitmap
    std::uint32_t capPending = 0;    ///< unresolved predictions
    bool capBlocked = false;         ///< stop speculating until drain
    bool capSpecStale = false;       ///< specHist diverged (LT miss)
    /// @}

    /// @name Stride fields (sections 3.7, 5.2)
    /// @{
    bool lastValid = false;
    std::uint64_t lastAddr = 0;
    std::int64_t stride = 0;
    std::int64_t candStride = 0; ///< two-delta candidate stride
    SatCounter strideConf{2, 0};
    std::uint64_t strideGhrPattern = 0;
    bool strideGhrValid = false;
    std::uint32_t run = 0;        ///< consecutive correct predictions
    std::uint32_t interval = 0;   ///< learned run length
    bool intervalValid = false;
    std::uint32_t stridePending = 0;
    std::uint64_t specLastAddr = 0; ///< last *predicted* address
    bool strideBlocked = false;
    /// @}

    /// @name Hybrid selector (section 3.7)
    /// @{
    SatCounter selector{2, 2}; ///< 0/1 stride, 2/3 CAP; init weak CAP
    /// @}
};

/**
 * Flat per-slot view joining the lane-resident probe state with the
 * cold fields: what entryAt() used to return by reference. Used by
 * state serialization, the auditor, telemetry, and fault injection.
 */
struct LBEntryImage : LBEntry
{
    bool valid = false;
    std::uint64_t tag = 0;
    std::uint64_t lruStamp = 0;
};

/**
 * Set-associative, LRU-replaced table of LBEntry indexed by load PC.
 */
class LoadBuffer
{
  public:
    /**
     * @param config Table geometry (validated by the owning
     *               predictor; sets() is a power of two because
     *               entries is and assoc divides it).
     * @param arena  Arena to carve the probe lanes from (the owning
     *               predictor's shared block); nullptr = private
     *               arena sized by laneBytes(config).
     */
    explicit LoadBuffer(const LoadBufferConfig &config,
                        LaneArena *arena = nullptr)
        : config_(config),
          sets_(config.sets()),
          setMask_(sets_ - 1),
          assoc_(config.assoc),
          assocShift_(floorLog2(config.assoc)),
          ctrlWordsPerSet_((config.assoc + 7) / 8),
          cold_(config.entries),
          gens_(config.entries, 0)
    {
        assert(isPowerOf2(sets_) && isPowerOf2(assoc_));
        if (arena == nullptr) {
            ownArena_ = std::make_unique<LaneArena>(laneBytes(config));
            arena = ownArena_.get();
        }
        ctrl_ = arena->alloc<std::uint64_t>(sets_ * ctrlWordsPerSet_);
        tags_ = arena->alloc<std::uint64_t>(config.entries);
        lru_ = arena->alloc<std::uint64_t>(config.entries);
    }

    LoadBuffer(const LoadBuffer &) = delete;
    LoadBuffer &operator=(const LoadBuffer &) = delete;

    /** Arena bytes the probe lanes of @p config consume. */
    static std::size_t
    laneBytes(const LoadBufferConfig &config)
    {
        const std::size_t ctrl_words =
            config.sets() * ((config.assoc + 7) / 8);
        return LaneArena::laneBytes<std::uint64_t>(ctrl_words) +
               2 * LaneArena::laneBytes<std::uint64_t>(config.entries);
    }

    /** Find the entry for @p pc, or nullptr on miss. Touches LRU. */
    LBEntry *
    lookup(std::uint64_t pc)
    {
        const std::size_t set = setIndex(pc);
        const std::uint64_t tag = pcTag(pc);
        const std::size_t base = set << assocShift_;
        prefetchRead(&cold_[base]);
        const std::uint8_t target = probe::ctrlByte(tag);
        const std::uint64_t *ctrl = &ctrl_[set * ctrlWordsPerSet_];
        for (std::size_t word = 0; word < ctrlWordsPerSet_; ++word) {
            std::uint32_t ways = probe::candidateWays(ctrl[word], target);
            const std::size_t word_base = base + word * 8;
            while (ways != 0) {
                // Ascending way order + full-tag confirmation keeps
                // the scalar first-match semantics exactly.
                const std::size_t slot =
                    word_base + std::countr_zero(ways);
                if (tags_[slot] == tag) {
                    lru_[slot] = ++stamp_;
                    return &cold_[slot];
                }
                ways &= ways - 1;
            }
        }
        return nullptr;
    }

    /** Handle to @p entry for revalidation at update time.
     *  @pre entry is a reference into this buffer */
    LBHandle
    handleOf(const LBEntry &entry) const
    {
        LBHandle handle;
        handle.slot = static_cast<std::uint32_t>(&entry - cold_.data());
        handle.gen = gens_[handle.slot];
        handle.valid = true;
        return handle;
    }

    /**
     * The entry for @p pc, using @p handle to skip the associative
     * search when it still designates @p pc's live entry. Equivalent
     * to lookup(pc) in every observable way — the fast path performs
     * the same single LRU touch a lookup hit would — so predictors can
     * substitute it for the update-time lookup without changing
     * results. A stale handle (slot reallocated, entry invalidated, or
     * tag rewritten, e.g. by fault injection) degrades to lookup(pc).
     */
    LBEntry *
    acquire(std::uint64_t pc, const LBHandle &handle)
    {
        if (handle.valid && handle.slot < cold_.size() &&
            gens_[handle.slot] == handle.gen) {
            const std::size_t slot = handle.slot;
            prefetchRead(&cold_[slot]);
            if (validAt(slot) && tags_[slot] == pcTag(pc)) {
                lru_[slot] = ++stamp_;
                return &cold_[slot];
            }
        }
        return lookup(pc);
    }

    /**
     * Allocate (or re-initialize) the entry for @p pc, evicting the
     * LRU way of its set. The returned entry is reset to defaults
     * with the (lane-resident) tag set and valid raised.
     */
    LBEntry &
    allocate(std::uint64_t pc)
    {
        const std::size_t base = setIndex(pc) << assocShift_;
        std::size_t victim = base;
        for (unsigned w = 1; w < assoc_; ++w) {
            if (!validAt(victim))
                break;
            const std::size_t slot = base + w;
            if (!validAt(slot) || lru_[slot] < lru_[victim])
                victim = slot;
        }
        // Reusing the slot invalidates any handle captured against
        // its previous occupant.
        ++gens_[victim];
        cold_[victim] = LBEntry{};
        const std::uint64_t tag = pcTag(pc);
        tags_[victim] = tag;
        lru_[victim] = ++stamp_;
        setCtrlByteAt(victim, probe::ctrlByte(tag));
        ++allocations_;
        return cold_[victim];
    }

    /** Number of allocations performed (eviction pressure metric). */
    std::uint64_t allocations() const { return allocations_; }

    const LoadBufferConfig &config() const { return config_; }

    /** Total entry slots (valid or not). */
    std::size_t numEntries() const { return cold_.size(); }

    /// @name Flat slot access (state dumps, audit, fault injection)
    /// None of these touch LRU. @pre i < numEntries()
    /// @{

    /** Flat snapshot of slot @p i (probe lanes + cold fields). */
    LBEntryImage
    imageAt(std::size_t i) const
    {
        LBEntryImage image;
        static_cast<LBEntry &>(image) = cold_[i];
        image.valid = validAt(i);
        image.tag = tags_[i];
        image.lruStamp = lru_[i];
        return image;
    }

    /** Overwrite slot @p i from a flat image, recomputing the probe
     *  lanes so the control byte always matches the stored tag. */
    void
    setImageAt(std::size_t i, const LBEntryImage &image)
    {
        cold_[i] = image; // slices to the cold fields
        tags_[i] = image.tag;
        lru_[i] = image.lruStamp;
        setCtrlByteAt(i, image.valid ? probe::ctrlByte(image.tag)
                                     : std::uint8_t{0});
    }

    /** Mutable cold fields of slot @p i (fault injection targets the
     *  histories and counters; the probe lanes are unaffected). */
    LBEntry &coldAt(std::size_t i) { return cold_[i]; }
    const LBEntry &coldAt(std::size_t i) const { return cold_[i]; }

    bool
    validAt(std::size_t i) const
    {
        return (ctrlByteAt(i) & 0x80u) != 0;
    }

    /** Lane coherence of slot @p i: a valid way's control byte must
     *  be the fingerprint of its full tag (core/audit.hh). */
    bool
    lanesCoherentAt(std::size_t i) const
    {
        const std::uint8_t ctrl = ctrlByteAt(i);
        return ctrl == 0 || ctrl == probe::ctrlByte(tags_[i]);
    }
    /// @}

    /** Invalidate all entries (and any outstanding handles). */
    void
    clear()
    {
        for (auto &entry : cold_)
            entry = LBEntry{};
        for (std::size_t i = 0; i < sets_ * ctrlWordsPerSet_; ++i)
            ctrl_[i] = 0;
        for (std::size_t i = 0; i < cold_.size(); ++i) {
            tags_[i] = 0;
            lru_[i] = 0;
        }
        for (auto &gen : gens_)
            ++gen;
    }

    /// @name State serialization support (core/state_io)
    /// Raw access to the LRU clock and allocation counter so a
    /// restored buffer reproduces replacement decisions bit-for-bit.
    /// Generations are intentionally NOT serialized: a restore bumps
    /// them via clear(), which invalidates pre-snapshot handles, and a
    /// stale handle is documented to degrade to lookup() — observably
    /// identical.
    /// @{
    std::uint64_t lruClock() const { return stamp_; }
    void setLruClock(std::uint64_t clock) { stamp_ = clock; }
    void setAllocations(std::uint64_t count) { allocations_ = count; }
    /// @}

  private:
    std::size_t
    setIndex(std::uint64_t pc) const
    {
        return (pc >> 2) & setMask_;
    }

    std::uint64_t
    pcTag(std::uint64_t pc) const
    {
        return pc >> 2;
    }

    std::uint8_t
    ctrlByteAt(std::size_t slot) const
    {
        const std::size_t set = slot >> assocShift_;
        const unsigned way = slot & (assoc_ - 1);
        const std::uint64_t word =
            ctrl_[set * ctrlWordsPerSet_ + way / 8];
        return static_cast<std::uint8_t>(word >> (8 * (way % 8)));
    }

    void
    setCtrlByteAt(std::size_t slot, std::uint8_t value)
    {
        const std::size_t set = slot >> assocShift_;
        const unsigned way = slot & (assoc_ - 1);
        std::uint64_t &word = ctrl_[set * ctrlWordsPerSet_ + way / 8];
        const unsigned shift = 8 * (way % 8);
        word = (word & ~(std::uint64_t{0xff} << shift)) |
               (std::uint64_t{value} << shift);
    }

    LoadBufferConfig config_;
    std::size_t sets_;
    std::size_t setMask_;
    unsigned assoc_;
    unsigned assocShift_;
    std::size_t ctrlWordsPerSet_;
    std::unique_ptr<LaneArena> ownArena_; ///< when none was provided
    std::uint64_t *ctrl_ = nullptr; ///< packed control bytes, per set
    std::uint64_t *tags_ = nullptr; ///< full tags, per slot
    std::uint64_t *lru_ = nullptr;  ///< LRU stamps, per slot
    std::vector<LBEntry> cold_;
    std::vector<std::uint32_t> gens_; ///< per-slot allocation generation
    std::uint64_t stamp_ = 0;
    std::uint64_t allocations_ = 0;
};

} // namespace clap

#endif // CLAP_CORE_LOAD_BUFFER_HH
