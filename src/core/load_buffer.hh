/**
 * @file
 * The Load Buffer (LB): the per-static-load first-level table shared
 * by the CAP and stride components of the hybrid predictor (sections
 * 3.1 and 3.7). Set-associative, PC-tagged, LRU-replaced. Each entry
 * carries the CAP fields (history, confidence, offset LSBs), the
 * stride fields (last address, stride, state), the hybrid selector,
 * and the speculative state needed in the pipelined model.
 */

#ifndef CLAP_CORE_LOAD_BUFFER_HH
#define CLAP_CORE_LOAD_BUFFER_HH

#include <cstdint>
#include <vector>

#include "core/config.hh"
#include "core/history.hh"
#include "core/predictor.hh"
#include "util/sat_counter.hh"

namespace clap
{

/** One load-buffer entry. */
struct LBEntry
{
    bool valid = false;
    std::uint64_t tag = 0;
    std::uint64_t lruStamp = 0;

    /// @name Shared fields
    /// @{
    std::uint8_t offsetLsb = 0; ///< 8 LSBs of the immediate offset
    /// @}

    /// @name CAP fields (section 3)
    /// @{
    bool capInit = false;     ///< first resolution seen (fields valid)
    HistoryRegister hist;     ///< architectural history (updated at
                              ///< resolution time)
    HistoryRegister specHist; ///< speculative history (pipelined mode)
    SatCounter capConf{2, 0};
    std::uint64_t capGhrPattern = 0; ///< last-mispredict GHR pattern
    bool capGhrValid = false;
    std::uint32_t capPathOk = ~0u;   ///< per-path accuracy bitmap
    std::uint32_t capPending = 0;    ///< unresolved predictions
    bool capBlocked = false;         ///< stop speculating until drain
    bool capSpecStale = false;       ///< specHist diverged (LT miss)
    /// @}

    /// @name Stride fields (sections 3.7, 5.2)
    /// @{
    bool lastValid = false;
    std::uint64_t lastAddr = 0;
    std::int64_t stride = 0;
    std::int64_t candStride = 0; ///< two-delta candidate stride
    SatCounter strideConf{2, 0};
    std::uint64_t strideGhrPattern = 0;
    bool strideGhrValid = false;
    std::uint32_t run = 0;        ///< consecutive correct predictions
    std::uint32_t interval = 0;   ///< learned run length
    bool intervalValid = false;
    std::uint32_t stridePending = 0;
    std::uint64_t specLastAddr = 0; ///< last *predicted* address
    bool strideBlocked = false;
    /// @}

    /// @name Hybrid selector (section 3.7)
    /// @{
    SatCounter selector{2, 2}; ///< 0/1 stride, 2/3 CAP; init weak CAP
    /// @}
};

/**
 * Set-associative, LRU-replaced table of LBEntry indexed by load PC.
 */
class LoadBuffer
{
  public:
    explicit LoadBuffer(const LoadBufferConfig &config)
        : config_(config),
          sets_(config.sets()),
          entries_(config.entries),
          gens_(config.entries, 0)
    {
    }

    /** Find the entry for @p pc, or nullptr on miss. Touches LRU. */
    LBEntry *
    lookup(std::uint64_t pc)
    {
        const std::size_t set = setIndex(pc);
        const std::uint64_t tag = pcTag(pc);
        for (unsigned w = 0; w < config_.assoc; ++w) {
            LBEntry &entry = entries_[set * config_.assoc + w];
            if (entry.valid && entry.tag == tag) {
                entry.lruStamp = ++stamp_;
                return &entry;
            }
        }
        return nullptr;
    }

    /** Handle to @p entry for revalidation at update time.
     *  @pre entry is a reference into this buffer */
    LBHandle
    handleOf(const LBEntry &entry) const
    {
        LBHandle handle;
        handle.slot = static_cast<std::uint32_t>(&entry - entries_.data());
        handle.gen = gens_[handle.slot];
        handle.valid = true;
        return handle;
    }

    /**
     * The entry for @p pc, using @p handle to skip the associative
     * search when it still designates @p pc's live entry. Equivalent
     * to lookup(pc) in every observable way — the fast path performs
     * the same single LRU touch a lookup hit would — so predictors can
     * substitute it for the update-time lookup without changing
     * results. A stale handle (slot reallocated, entry invalidated, or
     * tag rewritten, e.g. by fault injection) degrades to lookup(pc).
     */
    LBEntry *
    acquire(std::uint64_t pc, const LBHandle &handle)
    {
        if (handle.valid && handle.slot < entries_.size() &&
            gens_[handle.slot] == handle.gen) {
            LBEntry &entry = entries_[handle.slot];
            if (entry.valid && entry.tag == pcTag(pc)) {
                entry.lruStamp = ++stamp_;
                return &entry;
            }
        }
        return lookup(pc);
    }

    /**
     * Allocate (or re-initialize) the entry for @p pc, evicting the
     * LRU way of its set. The returned entry is reset to defaults
     * with the tag set.
     */
    LBEntry &
    allocate(std::uint64_t pc)
    {
        const std::size_t set = setIndex(pc);
        LBEntry *victim = &entries_[set * config_.assoc];
        for (unsigned w = 1; w < config_.assoc; ++w) {
            LBEntry &entry = entries_[set * config_.assoc + w];
            if (!victim->valid)
                break;
            if (!entry.valid || entry.lruStamp < victim->lruStamp)
                victim = &entry;
        }
        // Reusing the slot invalidates any handle captured against
        // its previous occupant.
        ++gens_[static_cast<std::size_t>(victim - entries_.data())];
        *victim = LBEntry{};
        victim->valid = true;
        victim->tag = pcTag(pc);
        victim->lruStamp = ++stamp_;
        ++allocations_;
        return *victim;
    }

    /** Number of allocations performed (eviction pressure metric). */
    std::uint64_t allocations() const { return allocations_; }

    const LoadBufferConfig &config() const { return config_; }

    /** Total entry slots (valid or not). */
    std::size_t numEntries() const { return entries_.size(); }

    /**
     * Raw access to entry slot @p i (fault injection / state dumps).
     * Does not touch LRU. @pre i < numEntries()
     */
    LBEntry &entryAt(std::size_t i) { return entries_[i]; }
    const LBEntry &entryAt(std::size_t i) const { return entries_[i]; }

    /** Invalidate all entries (and any outstanding handles). */
    void
    clear()
    {
        for (auto &entry : entries_)
            entry = LBEntry{};
        for (auto &gen : gens_)
            ++gen;
    }

    /// @name State serialization support (core/state_io)
    /// Raw access to the LRU clock and allocation counter so a
    /// restored buffer reproduces replacement decisions bit-for-bit.
    /// Generations are intentionally NOT serialized: a restore bumps
    /// them via clear(), which invalidates pre-snapshot handles, and a
    /// stale handle is documented to degrade to lookup() — observably
    /// identical.
    /// @{
    std::uint64_t lruClock() const { return stamp_; }
    void setLruClock(std::uint64_t clock) { stamp_ = clock; }
    void setAllocations(std::uint64_t count) { allocations_ = count; }
    /// @}

  private:
    std::size_t
    setIndex(std::uint64_t pc) const
    {
        return (pc >> 2) % sets_;
    }

    std::uint64_t
    pcTag(std::uint64_t pc) const
    {
        return pc >> 2;
    }

    LoadBufferConfig config_;
    std::size_t sets_;
    std::vector<LBEntry> entries_;
    std::vector<std::uint32_t> gens_; ///< per-slot allocation generation
    std::uint64_t stamp_ = 0;
    std::uint64_t allocations_ = 0;
};

} // namespace clap

#endif // CLAP_CORE_LOAD_BUFFER_HH
