#include "core/hybrid_predictor.hh"

#include "core/audit.hh"

namespace clap
{

Prediction
HybridPredictor::predict(const LoadInfo &info)
{
    Prediction pred;
    LBEntry *entry = lb_.lookup(info.pc);
    if (entry) {
        pred.lbHit = true;
    } else {
        // Allocate at predict time so in-flight instance counting
        // starts with the first fetch of the load.
        entry = &lb_.allocate(info.pc);
        entry->selector = SatCounter(2, config_.selectorInit);
    }
    pred.lbHandle = lb_.handleOf(*entry);
    const CapResult cap = cap_.predict(*entry, info);
    const StrideResult stride = stride_.predict(*entry, info);

    pred.capHasAddr = cap.hasAddr;
    pred.capSpec = cap.speculate;
    pred.capAddr = cap.addr;
    pred.strideHasAddr = stride.hasAddr;
    pred.strideSpec = stride.speculate;
    pred.strideAddr = stride.addr;
    pred.selectorState = entry->selector.value();
    pred.hasAddress = cap.hasAddr || stride.hasAddr;

    // Speculative accesses are performed when at least one component
    // is confident; the selector arbitrates when both are.
    if (cap.speculate && stride.speculate) {
        const bool pick_cap = entry->selector.upperHalf();
        pred.speculate = true;
        pred.component = pick_cap ? Component::Cap : Component::Stride;
        pred.addr = pick_cap ? cap.addr : stride.addr;
    } else if (cap.speculate) {
        pred.speculate = true;
        pred.component = Component::Cap;
        pred.addr = cap.addr;
    } else if (stride.speculate) {
        pred.speculate = true;
        pred.component = Component::Stride;
        pred.addr = stride.addr;
    }
    return pred;
}

void
HybridPredictor::update(const LoadInfo &info, std::uint64_t actual_addr,
                        const Prediction &pred)
{
    update(info, actual_addr, pred, true);
}

void
HybridPredictor::update(const LoadInfo &info, std::uint64_t actual_addr,
                        const Prediction &pred, bool allow_lt_update)
{
    LBEntry *entry = lb_.acquire(info.pc, pred.lbHandle);
    if (!entry) {
        // Evicted since predict: reallocate; the component updates
        // below self-initialize the fresh entry.
        entry = &lb_.allocate(info.pc);
        entry->selector = SatCounter(2, config_.selectorInit);
    }

    const bool cap_correct =
        pred.capHasAddr && pred.capAddr == actual_addr;
    const bool stride_correct =
        pred.strideHasAddr && pred.strideAddr == actual_addr;

    // Section 4.3 link-table update policies. The LB is always
    // updated for both components; only the LT write is conditional.
    bool allow_lt = allow_lt_update;
    switch (config_.ltUpdatePolicy) {
      case LtUpdatePolicy::Always:
        break;
      case LtUpdatePolicy::UnlessStrideCorrect:
        allow_lt = allow_lt && !stride_correct;
        break;
      case LtUpdatePolicy::UnlessStrideSelected:
        allow_lt = allow_lt &&
            !(stride_correct && pred.component == Component::Stride);
        break;
    }

    CapResult cap_result;
    cap_result.hasAddr = pred.capHasAddr;
    cap_result.speculate = pred.capSpec;
    cap_result.addr = pred.capAddr;
    cap_.update(*entry, info, actual_addr, cap_result, allow_lt);

    StrideResult stride_result;
    stride_result.hasAddr = pred.strideHasAddr;
    stride_result.speculate = pred.strideSpec;
    stride_result.addr = pred.strideAddr;
    stride_.update(*entry, info, actual_addr, stride_result);

    // Selector training: move toward the component that was right
    // when they disagree (2-bit counters recording relative
    // performance, updated after address verification).
    if (pred.capHasAddr && pred.strideHasAddr &&
        cap_correct != stride_correct) {
        if (cap_correct)
            entry->selector.increment();
        else
            entry->selector.decrement();
    }
}

PredictorTelemetry
HybridPredictor::snapshotTelemetry() const
{
    PredictorTelemetry t;
    t.predictor = name();
    fillLoadBufferTelemetry(lb_, t, /*withCap=*/true,
                            /*withStride=*/true,
                            /*withSelector=*/true);
    fillLinkTableTelemetry(cap_.linkTable(), t);
    t.hasCapGates = true;
    t.capGates = cap_.gateStats();
    t.hasStrideGates = true;
    t.strideGates = stride_.gateStats();
    return t;
}

Expected<void>
HybridPredictor::audit() const
{
    if (auto v = auditLoadBuffer(lb_); !v)
        return std::move(v.error()).withContext("hybrid predictor");
    if (auto v = auditLinkTable(cap_.linkTable()); !v)
        return std::move(v.error()).withContext("hybrid predictor");
    return ok();
}

} // namespace clap
