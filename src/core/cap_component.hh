/**
 * @file
 * The context-based (CAP) prediction component: everything from
 * sections 3.1-3.5 that operates on a load-buffer entry plus the link
 * table. Factored out of the predictor classes so the stand-alone CAP
 * predictor and the hybrid share one implementation, mirroring the
 * paper's shared-LB hybrid organization (section 3.7).
 */

#ifndef CLAP_CORE_CAP_COMPONENT_HH
#define CLAP_CORE_CAP_COMPONENT_HH

#include <cstdint>

#include "core/config.hh"
#include "core/link_table.hh"
#include "core/load_buffer.hh"
#include "core/predictor.hh"
#include "core/telemetry.hh"

namespace clap
{

/** Per-prediction CAP bookkeeping, carried from predict to update. */
struct CapResult
{
    bool hasAddr = false;   ///< the LT supplied a link
    bool speculate = false; ///< all confidence mechanisms agreed
    std::uint64_t addr = 0;
    std::uint64_t histUsed = 0; ///< history value used for the lookup
};

/**
 * CAP prediction/update logic. Owns the link table; the load buffer
 * entry is passed in by the caller (stand-alone predictor or hybrid).
 */
class CapComponent
{
  public:
    /**
     * @param config    Component configuration.
     * @param pipelined True to maintain speculative state for the
     *                  delayed-update model of section 5.
     * @param arena     Arena for the link-table lanes (the owning
     *                  predictor's shared block); nullptr lets the
     *                  table carry its own.
     */
    CapComponent(const CapConfig &config, bool pipelined,
                 LaneArena *arena = nullptr);

    /** Form a CAP prediction for @p info using LB entry @p entry. */
    CapResult predict(LBEntry &entry, const LoadInfo &info);

    /**
     * Resolve a prediction: train the LT (unless @p allow_lt_update
     * is false, for the section-4.3 selective policies), update
     * confidence and history, and repair speculative state.
     */
    void update(LBEntry &entry, const LoadInfo &info,
                std::uint64_t actual_addr, const CapResult &result,
                bool allow_lt_update = true);

    /** Initialize the CAP fields of a freshly allocated LB entry. */
    void initEntry(LBEntry &entry, const LoadInfo &info,
                   std::uint64_t actual_addr);

    /** The base address for a load (section 3.3). */
    std::uint64_t baseOf(const LoadInfo &info,
                         std::uint64_t addr) const;

    /** Reconstruct an address from a base and the entry's offset. */
    std::uint64_t addrOf(const LBEntry &entry, std::uint64_t base) const;

    LinkTable &linkTable() { return lt_; }
    const LinkTable &linkTable() const { return lt_; }
    const CapConfig &config() const { return config_; }

    /** Cumulative speculation-gate attribution (telemetry). */
    const CapGateStats &gateStats() const { return gates_; }

    /** Overwrite the gate counters (core/state_io restore). */
    void setGateStats(const CapGateStats &gates) { gates_ = gates; }

  private:
    /** Control-flow indication check (section 3.4). */
    bool pathAllows(const LBEntry &entry, std::uint64_t ghr) const;

    /** Record/clear control-flow indications after a resolution. */
    void recordPath(LBEntry &entry, std::uint64_t ghr, bool correct,
                    bool speculated);

    CapConfig config_;
    bool pipelined_;
    LinkTable lt_;
    CapGateStats gates_;
};

} // namespace clap

#endif // CLAP_CORE_CAP_COMPONENT_HH
