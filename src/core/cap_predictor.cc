#include "core/cap_predictor.hh"

#include "core/audit.hh"

namespace clap
{

Prediction
CapPredictor::predict(const LoadInfo &info)
{
    Prediction pred;
    LBEntry *entry = lb_.lookup(info.pc);
    if (entry) {
        pred.lbHit = true;
    } else {
        // Allocate at predict time so in-flight instance counting
        // starts with the first fetch of the load.
        entry = &lb_.allocate(info.pc);
    }
    pred.lbHandle = lb_.handleOf(*entry);
    const CapResult result = cap_.predict(*entry, info);
    pred.hasAddress = result.hasAddr;
    pred.speculate = result.speculate;
    pred.addr = result.addr;
    pred.component = result.speculate ? Component::Cap : Component::None;
    pred.capHasAddr = result.hasAddr;
    pred.capSpec = result.speculate;
    pred.capAddr = result.addr;
    return pred;
}

void
CapPredictor::update(const LoadInfo &info, std::uint64_t actual_addr,
                     const Prediction &pred)
{
    LBEntry *entry = lb_.acquire(info.pc, pred.lbHandle);
    if (!entry)
        entry = &lb_.allocate(info.pc); // evicted since predict

    CapResult result;
    result.hasAddr = pred.capHasAddr;
    result.speculate = pred.capSpec;
    result.addr = pred.capAddr;
    cap_.update(*entry, info, actual_addr, result);
}

PredictorTelemetry
CapPredictor::snapshotTelemetry() const
{
    PredictorTelemetry t;
    t.predictor = name();
    fillLoadBufferTelemetry(lb_, t, /*withCap=*/true,
                            /*withStride=*/false,
                            /*withSelector=*/false);
    fillLinkTableTelemetry(cap_.linkTable(), t);
    t.hasCapGates = true;
    t.capGates = cap_.gateStats();
    return t;
}

Expected<void>
CapPredictor::audit() const
{
    if (auto v = auditLoadBuffer(lb_); !v)
        return std::move(v.error()).withContext("cap predictor");
    if (auto v = auditLinkTable(cap_.linkTable()); !v)
        return std::move(v.error()).withContext("cap predictor");
    return ok();
}

} // namespace clap
