#include "core/control_predictor.hh"

namespace clap
{

std::size_t
ControlAddressPredictor::index(const LoadInfo &info) const
{
    const std::uint64_t history =
        (config_.usePathHistory ? info.pathHist : info.ghr) &
        mask(config_.historyBits);
    return static_cast<std::size_t>(((info.pc >> 2) ^ history) &
                                    mask(config_.tableBits));
}

std::uint64_t
ControlAddressPredictor::tag(const LoadInfo &info) const
{
    if (config_.tagBits == 0)
        return 0;
    const std::uint64_t history =
        (config_.usePathHistory ? info.pathHist : info.ghr) &
        mask(config_.historyBits);
    // Tag from PC bits above the index, mixed with the history so two
    // contexts of the same load are distinguished.
    return ((info.pc >> (2 + config_.tableBits)) ^ (history * 0x9e5)) &
        mask(config_.tagBits);
}

Prediction
ControlAddressPredictor::predict(const LoadInfo &info)
{
    Prediction pred;
    const Entry &entry = entries_[index(info)];
    if (!entry.valid)
        return pred;

    pred.lbHit = true;
    const bool tag_ok =
        config_.tagBits == 0 || entry.tag == tag(info);
    pred.hasAddress = tag_ok;
    pred.addr = entry.addr;
    pred.speculate = tag_ok &&
        entry.conf.atLeast(
            static_cast<std::uint8_t>(config_.confThreshold));
    pred.component = pred.speculate ? Component::Last : Component::None;
    return pred;
}

void
ControlAddressPredictor::update(const LoadInfo &info,
                                std::uint64_t actual_addr,
                                const Prediction &pred)
{
    Entry &entry = entries_[index(info)];
    const std::uint64_t entry_tag = tag(info);

    if (!entry.valid || entry.tag != entry_tag) {
        entry.valid = true;
        entry.tag = entry_tag;
        entry.addr = actual_addr;
        entry.conf = SatCounter(config_.confBits, 0);
        return;
    }

    if (pred.hasAddress) {
        if (pred.addr == actual_addr)
            entry.conf.increment();
        else
            entry.conf.reset();
    }
    entry.addr = actual_addr;
}

} // namespace clap
