/**
 * @file
 * Versioned binary serialization of full predictor state: the
 * LoadBuffer (every field of every slot, including the LRU clock and
 * per-entry confidence/selector counters), the LinkTable (links, PF
 * bits, the decoupled PF table, update counters), and the component
 * gate counters. A restored predictor is bit-for-bit equivalent to
 * the captured one: it passes core/audit.hh and produces identical
 * PredictionStats on any continuation trace.
 *
 * On-disk layout (little-endian, explicit per-field serialization —
 * the trace-v2 idiom, see trace/trace_io.hh):
 *
 *   magic    "CLAPSTA\0"         8 bytes
 *   version  u32                 (1 = current)
 *   name     u32 length + bytes  predictor name() ("hybrid", ...)
 *   nsec     u32                 number of sections
 *   sections nsec * {
 *     id      u32                StateSection value (>= 0x100 caller)
 *     length  u64                payload bytes
 *     payload length bytes
 *     crc     u32                CRC-32 over this payload
 *   }
 *   footer   u32                 CRC-32 over everything above
 *
 * Robustness: each section carries its own CRC, so a truncated or
 * tail-corrupted snapshot can be *salvaged* — intact leading sections
 * restore, damaged ones are dropped (the corresponding structure is
 * cleared) and reported in StateReadResult::droppedSections. Sections
 * are written smallest-first with the LoadBuffer last, so truncation
 * takes the (quickly relearned) LB before the slow-to-relearn link
 * table. Header damage and version-from-the-future are never
 * salvageable: they fail with BadMagic/BadHeader/BadVersion.
 *
 * Callers (the shard supervisor) can piggyback their own sections —
 * ids >= firstCallerSection — which travel under the same framing and
 * salvage rules.
 */

#ifndef CLAP_CORE_STATE_IO_HH
#define CLAP_CORE_STATE_IO_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.hh"

namespace clap
{

class AddressPredictor;

/** Current snapshot format version. */
constexpr std::uint32_t stateFormatVersion = 1;

/** Snapshot file magic. */
constexpr char stateMagic[8] = {'C', 'L', 'A', 'P', 'S', 'T', 'A', '\0'};

/** Header sanity bound on the embedded predictor-name length. */
constexpr std::uint32_t maxStateNameLen = 256;

/** Header sanity bound on the section count. */
constexpr std::uint32_t maxStateSections = 64;

/** Well-known section ids. */
enum class StateSection : std::uint32_t
{
    CapGates = 1,    ///< CapGateStats counters
    StrideGates = 2, ///< StrideGateStats counters
    LinkTable = 3,   ///< full LT state incl. decoupled PF table
    LoadBuffer = 4,  ///< full LB state, every slot
};

/** First section id available to callers (e.g. serve shard stats). */
constexpr std::uint32_t firstCallerSection = 0x100;

/** A caller-supplied opaque section: id + raw payload bytes. */
struct StateExtraSection
{
    std::uint32_t id = firstCallerSection;
    std::string payload;
};

/** Options for decode/read. */
struct StateReadOptions
{
    /// Recover intact sections from a truncated or tail-corrupted
    /// snapshot instead of failing: structures whose sections are
    /// damaged or missing are cleared, and the damage is reported in
    /// StateReadResult. Header damage still errors out.
    bool salvage = false;
};

/** Diagnostics returned by a successful decode. */
struct StateReadResult
{
    std::uint32_t version = 0;   ///< on-disk format version
    std::uint32_t sections = 0;  ///< sections promised by the header
    std::uint32_t restored = 0;  ///< sections actually applied
    bool salvaged = false;       ///< at least one section was dropped
    std::vector<std::uint32_t> droppedSections; ///< ids lost to damage
};

/**
 * Serialize the full state of @p pred to a byte string. Supports the
 * concrete predictor kinds ("hybrid", "cap", "stride", "last");
 * anything else reports InvalidArgument. @p extras are appended as
 * caller sections, before the predictor sections.
 */
Expected<std::string>
encodePredictorState(const AddressPredictor &pred,
                     const std::vector<StateExtraSection> &extras = {});

/**
 * Restore @p pred from bytes produced by encodePredictorState. The
 * target predictor must have the same name and table geometry as the
 * captured one (InvalidArgument otherwise); its current state is
 * overwritten. When @p extras is non-null, caller sections are
 * returned through it. After a full (non-salvaged) restore the
 * predictor is audited; an audit failure reports CorruptedState.
 */
Expected<StateReadResult>
decodePredictorState(std::string_view bytes, AddressPredictor &pred,
                     const StateReadOptions &options = {},
                     std::vector<StateExtraSection> *extras = nullptr);

/** writeFileAtomic(encodePredictorState(...)): durable on POSIX. */
Expected<void>
writePredictorState(const AddressPredictor &pred, const std::string &path,
                    const std::vector<StateExtraSection> &extras = {});

/** readFileBytes + decodePredictorState. */
Expected<StateReadResult>
readPredictorState(const std::string &path, AddressPredictor &pred,
                   const StateReadOptions &options = {},
                   std::vector<StateExtraSection> *extras = nullptr);

/** Per-section summary reported by inspectStateFile. */
struct StateSectionInfo
{
    std::uint32_t id = 0;
    std::uint64_t length = 0; ///< payload bytes
    bool intact = false;      ///< fully present with a matching CRC
};

/** Whole-file summary for tools (no predictor needed). */
struct StateFileInfo
{
    std::uint32_t version = 0;
    std::string predictor;    ///< embedded predictor name
    std::uint32_t sections = 0; ///< promised by the header
    std::vector<StateSectionInfo> sectionInfo; ///< walked sections
    bool footerOk = false;    ///< whole-file CRC verified
    bool complete = false;    ///< every promised section intact AND
                              ///< footer present and matching
};

/**
 * Parse a snapshot's framing without restoring anything: header,
 * per-section lengths and CRCs, footer. Walks as far as the damage
 * allows — only header-level problems (magic/version/name bounds)
 * error out.
 */
Expected<StateFileInfo> inspectStateBytes(std::string_view bytes);

/** readFileBytes + inspectStateBytes. */
Expected<StateFileInfo> inspectStateFile(const std::string &path);

} // namespace clap

#endif // CLAP_CORE_STATE_IO_HH
