/**
 * @file
 * Public address-predictor interface. A predictor sees, at predict
 * time, only what a real front end would have: the load's PC, the
 * immediate offset from its opcode, and the global branch/path
 * history. The actual effective address arrives later via update()
 * (immediately in the section-4 model, after the prediction gap in
 * the section-5 pipelined model).
 */

#ifndef CLAP_CORE_PREDICTOR_HH
#define CLAP_CORE_PREDICTOR_HH

#include <cstdint>
#include <string>

#include "core/telemetry.hh"
#include "util/error.hh"

namespace clap
{

/** Which component of a (possibly hybrid) predictor produced a
 *  speculative address. */
enum class Component : std::uint8_t
{
    None,
    Last,
    Stride,
    Cap,
};

/** Front-end information available when a load is predicted. */
struct LoadInfo
{
    std::uint64_t pc = 0;
    std::int32_t immOffset = 0;  ///< opcode immediate (section 3.3)
    std::uint64_t ghr = 0;       ///< global branch history, LSB newest
    std::uint64_t pathHist = 0;  ///< call-site path history
};

/**
 * Opaque reference to the load-buffer entry a predict() call used:
 * the entry's slot index plus the slot's generation stamp at predict
 * time (bumped on every (re)allocation of the slot). update() hands
 * the same Prediction back, and the predictor revalidates the handle
 * (generation AND tag must still match) instead of repeating the
 * set-associative search — one LoadBuffer search per load instead of
 * two. A stale handle (entry evicted between predict and update, or a
 * generation counter that wrapped onto a reused slot) falls back to a
 * fresh lookup; the tag check makes a wrapped-generation false match
 * harmless, because a slot that passes it holds this PC's entry
 * anyway.
 */
struct LBHandle
{
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
    bool valid = false; ///< false = no handle captured (always search)
};

/**
 * Outcome of a predict() call. The same object must be passed back to
 * update() for training: it carries the per-component predictions so
 * hybrid selection and statistics need no second table lookup.
 *
 * Terminology follows the paper: a prediction is *formed* whenever a
 * component produced an address (hasAddress); a *speculative access*
 * is performed only when the confidence mechanisms agree (speculate).
 * Prediction rate = speculative accesses / dynamic loads; accuracy =
 * correct / speculative accesses.
 */
struct Prediction
{
    bool lbHit = false;      ///< load hit in the predictor table(s)
    bool hasAddress = false; ///< some component formed an address
    bool speculate = false;  ///< confidence allows a speculative access
    std::uint64_t addr = 0;  ///< the speculated address (if speculate)
    Component component = Component::None; ///< winning component

    /// Load-buffer entry used at predict time; lets update() skip the
    /// second set-associative search (validated, never trusted).
    LBHandle lbHandle;

    /// @name Per-component detail (hybrid bookkeeping and statistics)
    /// @{
    bool capHasAddr = false;
    bool capSpec = false;
    std::uint64_t capAddr = 0;
    bool strideHasAddr = false;
    bool strideSpec = false;
    std::uint64_t strideAddr = 0;
    std::uint8_t selectorState = 0; ///< 2-bit selector value at predict
    /// @}
};

/** Abstract load-address predictor. */
class AddressPredictor
{
  public:
    virtual ~AddressPredictor() = default;

    /** Form a prediction for the load described by @p info. */
    virtual Prediction predict(const LoadInfo &info) = 0;

    /**
     * Resolve a prior prediction: the load's actual effective address
     * is known. @p pred must be the object predict() returned for
     * this dynamic instance. In the pipelined model, calls arrive in
     * program order but delayed by the prediction gap.
     */
    virtual void update(const LoadInfo &info, std::uint64_t actual_addr,
                        const Prediction &pred) = 0;

    /** Human-readable predictor name for reports. */
    virtual std::string name() const = 0;

    /**
     * Check the predictor's structural invariants (tag uniqueness,
     * field widths, counter ranges — see core/audit.hh). The sweep
     * runner calls this between traces; a CorruptedState error marks
     * the finished job as retryable under fault injection. The
     * default is a no-op for predictors without auditable tables.
     */
    virtual Expected<void> audit() const { return ok(); }

    /**
     * Deterministic snapshot of internal predictor state for
     * diagnostics (core/telemetry.hh): table occupancy, confidence
     * and selector distributions, gate-veto attribution. Never part
     * of the PredictionStats reproducibility contract. The default
     * reports only the predictor name.
     */
    virtual PredictorTelemetry
    snapshotTelemetry() const
    {
        PredictorTelemetry t;
        t.predictor = name();
        return t;
    }
};

} // namespace clap

#endif // CLAP_CORE_PREDICTOR_HH
