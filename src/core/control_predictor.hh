/**
 * @file
 * Control-based address predictors (paper section 3.6): predict load
 * addresses with branch-predictor-like structures — a g-share scheme
 * indexing an address table with (load PC xor global branch history),
 * or a path-history scheme using the recent call sites instead.
 *
 * The paper evaluates these as an alternative for control-dependent
 * loads and rejects them ("gives poor results mainly because the
 * loads are not well correlated to all the individual conditional
 * branches"; path history "gives better results" but still "does not
 * seem good enough"). They are implemented here so the comparison
 * can be reproduced (see bench_control_based).
 */

#ifndef CLAP_CORE_CONTROL_PREDICTOR_HH
#define CLAP_CORE_CONTROL_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "core/config.hh"
#include "core/predictor.hh"
#include "util/bits.hh"
#include "util/sat_counter.hh"

namespace clap
{

/** Configuration of the control-based address predictor. */
struct ControlPredictorConfig
{
    /// log2 of the address-table entries.
    unsigned tableBits = 12;

    /// History bits xored into the index.
    unsigned historyBits = 8;

    /// Index with the call-site path history instead of the global
    /// branch history (the better-performing variant in the paper).
    bool usePathHistory = false;

    /// Tag bits per entry (0 disables tagging).
    unsigned tagBits = 8;

    /// Confidence counter.
    unsigned confBits = 2;
    unsigned confThreshold = 2;
};

/**
 * g-share-style address predictor: table of last addresses indexed by
 * load PC xor control history, with tags and per-entry confidence.
 */
class ControlAddressPredictor : public AddressPredictor
{
  public:
    ControlPredictorConfig config() const { return config_; }

    explicit ControlAddressPredictor(const ControlPredictorConfig &cfg)
        : config_(cfg),
          entries_(std::size_t{1} << cfg.tableBits)
    {
    }

    Prediction predict(const LoadInfo &info) override;
    void update(const LoadInfo &info, std::uint64_t actual_addr,
                const Prediction &pred) override;

    std::string
    name() const override
    {
        return config_.usePathHistory ? "control-path" : "control-gshare";
    }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t addr = 0;
        SatCounter conf{2, 0};
    };

    std::size_t index(const LoadInfo &info) const;
    std::uint64_t tag(const LoadInfo &info) const;

    ControlPredictorConfig config_;
    std::vector<Entry> entries_;
};

} // namespace clap

#endif // CLAP_CORE_CONTROL_PREDICTOR_HH
