/**
 * @file
 * Trace composition: a TraceSpec names a set of parameterized kernels
 * with mixing weights and a seed; generateTrace() interleaves kernel
 * steps in weighted random bursts to build a deterministic synthetic
 * trace. Burst interleaving (rather than strict round-robin) models a
 * program alternating between activities and creates the load-buffer
 * interleaving pressure real traces exhibit.
 */

#ifndef CLAP_WORKLOADS_COMPOSER_HH
#define CLAP_WORKLOADS_COMPOSER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "trace/trace.hh"
#include "workloads/array_kernels.hh"
#include "workloads/control_kernels.hh"
#include "workloads/misc_kernels.hh"
#include "workloads/rds_kernels.hh"

namespace clap
{

/** Parameter pack for any kernel family; the alternative selects it. */
using KernelParams = std::variant<
    LinkedListKernel::Params,
    DoublyLinkedListKernel::Params,
    BinaryTreeKernel::Params,
    ArrayListKernel::Params,
    CallSiteKernel::Params,
    StackFrameKernel::Params,
    RepeatedBurstKernel::Params,
    StrideArrayKernel::Params,
    MatrixKernel::Params,
    HashTableKernel::Params,
    RandomPointerKernel::Params,
    GlobalScalarKernel::Params>;

/** One kernel instance inside a trace, with its mixing weight. */
struct WeightedKernel
{
    KernelParams params;
    double weight = 1.0;

    /// Static code copies (KernelContext::codeVariants).
    unsigned variants = 1;
};

/** Full recipe for one synthetic trace. */
struct TraceSpec
{
    std::string name;   ///< e.g. "INT_rds1"
    std::string suite;  ///< e.g. "INT"
    std::uint64_t seed = 1;
    std::vector<WeightedKernel> kernels;
};

/** Instantiate the kernel named by @p params. */
std::unique_ptr<Kernel> makeKernel(const KernelParams &params);

/**
 * Generate a trace of at least @p target_insts records (generation
 * stops at the first kernel-step boundary past the target).
 * Deterministic in (spec, target_insts).
 */
Trace generateTrace(const TraceSpec &spec, std::size_t target_insts);

/**
 * Generate into an existing sink (e.g. a TraceFileWriter) instead of
 * an in-memory trace. Returns the number of records emitted.
 */
std::size_t generateTrace(const TraceSpec &spec, std::size_t target_insts,
                          TraceSink &sink);

} // namespace clap

#endif // CLAP_WORKLOADS_COMPOSER_HH
