#include "workloads/rds_kernels.hh"

#include <algorithm>
#include <cassert>

namespace clap
{

// ---------------------------------------------------------------------
// LinkedListKernel
// ---------------------------------------------------------------------

void
LinkedListKernel::init(KernelContext &ctx)
{
    bind(ctx);
    assert(params_.numNodes >= 2);
    assert(params_.numDataFields >= 1 && params_.numDataFields <= 4);

    nextOffset_ = 4 * params_.numDataFields;
    nodeSize_ = nextOffset_ + 4;

    // The pointer variable holding the current element (the memory
    // %ebx points to in the paper's xlevarg listing): its load has a
    // constant address even though its value chases the chain.
    ptrVar_ = heap_->allocGlobal(8);

    chain_.reserve(params_.numNodes);
    for (unsigned i = 0; i < params_.numNodes; ++i)
        chain_.push_back(heap_->alloc(nodeSize_));

    // Chain the nodes in a random permutation so successive bases are
    // not allocation-ordered (which a stride predictor could track).
    for (std::size_t i = chain_.size() - 1; i > 0; --i)
        std::swap(chain_[i], chain_[rng_->below(i + 1)]);
}

void
LinkedListKernel::step()
{
    // Static slots mirror the paper's xlevarg listing: 0 = load of
    // the current-element pointer from its (constant-address) pointer
    // variable, 1..F = field loads, F+1 = alu, F+2 = next load,
    // F+3 = store of next back to the pointer variable, F+4 = branch.
    pickVariant();
    const unsigned fields = params_.numDataFields;
    const std::uint8_t ptr_reg = reg(0);
    const std::uint8_t val_reg = reg(1);
    const std::uint8_t acc_reg = reg(2);

    for (std::size_t n = 0; n < chain_.size(); ++n) {
        const std::uint64_t base = chain_[n];
        emit_.load(0, ptrVar_, 0, ptr_reg);
        for (unsigned f = 0; f < fields; ++f) {
            emit_.load(1 + f, base + 4 * f, static_cast<std::int32_t>(4 * f),
                       val_reg, ptr_reg);
        }
        emit_.alu(1 + fields, acc_reg, acc_reg, val_reg);
        // p = p->next: the loaded value becomes the next base address.
        emit_.load(2 + fields,
                   base + nextOffset_,
                   static_cast<std::int32_t>(nextOffset_),
                   ptr_reg, ptr_reg);
        emit_.store(3 + fields, ptrVar_, 0, ptr_reg);
        const bool last = (n + 1 == chain_.size());
        emit_.branch(4 + fields, !last, 1, ptr_reg);
    }

    if (params_.mutateProb > 0.0 && rng_->chance(params_.mutateProb))
        mutate();
}

void
LinkedListKernel::mutate()
{
    if (rng_->chance(0.5) && chain_.size() > 2) {
        // Unlink a random interior node.
        chain_.erase(chain_.begin() +
                     static_cast<std::ptrdiff_t>(
                         rng_->range(1, chain_.size() - 1)));
    } else {
        // Insert a freshly allocated node at a random position.
        const std::uint64_t node = heap_->alloc(nodeSize_);
        chain_.insert(chain_.begin() +
                      static_cast<std::ptrdiff_t>(
                          rng_->below(chain_.size() + 1)),
                      node);
    }
}

// ---------------------------------------------------------------------
// DoublyLinkedListKernel
// ---------------------------------------------------------------------

void
DoublyLinkedListKernel::init(KernelContext &ctx)
{
    bind(ctx);
    assert(params_.numNodes >= 2);

    // Node layout: val @0, next @4, prev @8 (figure 2 of the paper).
    chain_.reserve(params_.numNodes);
    for (unsigned i = 0; i < params_.numNodes; ++i)
        chain_.push_back(heap_->alloc(12));
    for (std::size_t i = chain_.size() - 1; i > 0; --i)
        std::swap(chain_[i], chain_[rng_->below(i + 1)]);
}

void
DoublyLinkedListKernel::step()
{
    // Slots: 0 header, 1 val load, 2 alu, 3 pointer load, 4 branch.
    pickVariant();
    const std::uint8_t ptr_reg = reg(0);
    const std::uint8_t val_reg = reg(1);
    const std::uint8_t acc_reg = reg(2);

    // Decide traversal direction; a draw at the bias alternates.
    forward_ = rng_->chance(params_.forwardBias);
    const std::uint32_t ptr_off = forward_ ? 4u : 8u;

    emit_.alu(0, ptr_reg);
    const std::size_t n = chain_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t base =
            forward_ ? chain_[i] : chain_[n - 1 - i];
        emit_.load(1, base + 0, 0, val_reg, ptr_reg);
        emit_.alu(2, acc_reg, acc_reg, val_reg);
        emit_.load(3, base + ptr_off, static_cast<std::int32_t>(ptr_off),
                   ptr_reg, ptr_reg);
        emit_.branch(4, i + 1 != n, 1, ptr_reg);
    }
}

// ---------------------------------------------------------------------
// BinaryTreeKernel
// ---------------------------------------------------------------------

int
BinaryTreeKernel::build(unsigned lo, unsigned hi)
{
    if (lo >= hi)
        return -1;
    const unsigned mid = lo + (hi - lo) / 2;
    const int idx = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_[idx].base = heap_->alloc(16);
    nodes_[idx].key = mid * 10;
    // Children are built after the parent, so store indices afterwards.
    const int left = build(lo, mid);
    const int right = build(mid + 1, hi);
    nodes_[idx].left = left;
    nodes_[idx].right = right;
    return idx;
}

void
BinaryTreeKernel::init(KernelContext &ctx)
{
    bind(ctx);
    assert(params_.numNodes >= 1);
    assert(params_.keyPeriod >= 1);

    nodes_.reserve(params_.numNodes);
    root_ = build(0, params_.numNodes);
    rootVar_ = heap_->allocGlobal(8);

    // A short recurring sequence of searched keys (present in tree).
    keySeq_.reserve(params_.keyPeriod);
    for (unsigned i = 0; i < params_.keyPeriod; ++i) {
        keySeq_.push_back(
            nodes_[rng_->below(nodes_.size())].key);
    }
}

void
BinaryTreeKernel::search(std::uint32_t key)
{
    // Slots: 0 header, 1 key load, 2 compare branch, 3 left load,
    // 4 right load, 5 found/exit branch.
    const std::uint8_t ptr_reg = reg(0);
    const std::uint8_t key_reg = reg(1);

    // Root pointer lives in a global: a constant-address load.
    emit_.load(0, rootVar_, 0, ptr_reg);
    int idx = root_;
    while (idx >= 0) {
        // All three fields of the node are loaded together (as in the
        // xlisp NODE example where n_type, car and cdr are read from
        // the same element), so the per-field base-address sequences
        // coincide and global correlation can share their links.
        const Node &node = nodes_[static_cast<std::size_t>(idx)];
        emit_.load(1, node.base + 0, 0, key_reg, ptr_reg);
        emit_.load(3, node.base + 4, 4, reg(2), ptr_reg);
        emit_.load(4, node.base + 8, 8, reg(3), ptr_reg);
        if (key == node.key) {
            emit_.branch(2, true, 5, key_reg);
            break;
        }
        const bool go_left = key < node.key;
        emit_.branch(2, false, 5, key_reg);
        emit_.alu(6, ptr_reg, go_left ? reg(2) : reg(3));
        idx = go_left ? node.left : node.right;
        emit_.branch(5, idx >= 0, 1, ptr_reg);
    }
}

void
BinaryTreeKernel::step()
{
    pickVariant();
    std::uint32_t key;
    if (rng_->chance(params_.randomKeyProb)) {
        key = nodes_[rng_->below(nodes_.size())].key;
    } else {
        key = keySeq_[seqPos_];
        seqPos_ = (seqPos_ + 1) % keySeq_.size();
    }
    search(key);
}

// ---------------------------------------------------------------------
// ArrayListKernel
// ---------------------------------------------------------------------

void
ArrayListKernel::init(KernelContext &ctx)
{
    bind(ctx);
    assert(params_.numLists >= 1);
    assert(params_.listLen >= 2);
    assert(params_.numElems >= params_.numLists * params_.listLen);

    valBase_ = heap_->allocGlobal(4 * params_.numElems, 64);
    nextBase_ = heap_->allocGlobal(4 * params_.numElems, 64);

    // Thread numLists chains through a shared random permutation of
    // element indices (each element belongs to at most one list).
    std::vector<std::uint32_t> perm(params_.numElems);
    for (std::uint32_t i = 0; i < params_.numElems; ++i)
        perm[i] = i;
    for (std::size_t i = perm.size() - 1; i > 0; --i)
        std::swap(perm[i], perm[rng_->below(i + 1)]);

    nextIdx_.assign(params_.numElems, 0);
    heads_.reserve(params_.numLists);
    std::size_t cursor = 0;
    for (unsigned l = 0; l < params_.numLists; ++l) {
        heads_.push_back(perm[cursor]);
        for (unsigned e = 0; e + 1 < params_.listLen; ++e) {
            nextIdx_[perm[cursor]] = perm[cursor + 1];
            ++cursor;
        }
        nextIdx_[perm[cursor]] = perm[cursor]; // self-link terminator
        ++cursor;
    }
}

void
ArrayListKernel::step()
{
    // Traverse one list per step, round-robin over the lists. Loads
    // are go-style: effective address = array base + 4*index with the
    // array base as the immediate (index held in a register).
    pickVariant();
    const std::uint8_t idx_reg = reg(0);
    const std::uint8_t val_reg = reg(1);
    const std::uint8_t acc_reg = reg(2);

    const unsigned list = turn_;
    turn_ = (turn_ + 1) % params_.numLists;

    emit_.alu(0, idx_reg);
    std::uint32_t idx = heads_[list];
    for (unsigned e = 0; e < params_.listLen; ++e) {
        emit_.load(1, valBase_ + 4ull * idx,
                   static_cast<std::int32_t>(valBase_), val_reg, idx_reg);
        emit_.alu(2, acc_reg, acc_reg, val_reg);
        emit_.load(3, nextBase_ + 4ull * idx,
                   static_cast<std::int32_t>(nextBase_), idx_reg, idx_reg);
        const std::uint32_t next = nextIdx_[idx];
        emit_.branch(4, next != idx, 1, idx_reg);
        if (next == idx)
            break;
        idx = next;
    }
}

} // namespace clap
