/**
 * @file
 * Recursive-data-structure kernels (paper section 2.1): linked list,
 * doubly linked list, binary tree, and the go-style array-coded list.
 * These generate exactly the "short recurring base-address sequences
 * with global correlation among fields" the CAP predictor targets.
 */

#ifndef CLAP_WORKLOADS_RDS_KERNELS_HH
#define CLAP_WORKLOADS_RDS_KERNELS_HH

#include <cstdint>
#include <vector>

#include "workloads/kernel.hh"

namespace clap
{

/**
 * Singly linked list traversal, modelled on the xlisp NODE walk in
 * section 2.1: each visit loads one or more data fields and the next
 * pointer from the same node (shared base address), then a loop
 * branch. Node order is a random permutation of fragmented heap
 * allocations, so the pattern is stride-unpredictable but repeats
 * every traversal. Occasional structural mutation forces retraining.
 */
class LinkedListKernel : public Kernel
{
  public:
    struct Params
    {
        unsigned numNodes = 16;     ///< list length
        unsigned numDataFields = 2; ///< data loads per node
        double mutateProb = 0.0;    ///< P(structural change) per step
    };

    explicit LinkedListKernel(const Params &params) : params_(params) {}

    void init(KernelContext &ctx) override;
    void step() override;
    std::string name() const override { return "linked_list"; }

    /** Base addresses in traversal order (exposed for tests). */
    const std::vector<std::uint64_t> &chain() const { return chain_; }

  private:
    void mutate();

    Params params_;
    std::vector<std::uint64_t> chain_; ///< node bases in traversal order
    std::uint64_t ptrVar_ = 0; ///< global holding the current pointer
    std::uint32_t nextOffset_ = 0;
    std::uint32_t nodeSize_ = 0;
};

/**
 * Doubly linked list with alternating forward/backward traversals.
 * The data-field load needs a history of two base addresses to know
 * the traversal direction — the paper's figure 2 example motivating
 * history length > 1.
 */
class DoublyLinkedListKernel : public Kernel
{
  public:
    struct Params
    {
        unsigned numNodes = 12;
        /** P(traverse forward); alternates when drawn equal. */
        double forwardBias = 0.5;
    };

    explicit DoublyLinkedListKernel(const Params &params)
        : params_(params)
    {}

    void init(KernelContext &ctx) override;
    void step() override;
    std::string name() const override { return "dlist"; }

  private:
    Params params_;
    std::vector<std::uint64_t> chain_;
    bool forward_ = true;
};

/**
 * Binary search tree probed with a short recurring key sequence.
 * Each search emits the root-to-node chain of key/child-pointer
 * loads; with a periodic key sequence the concatenated load pattern
 * repeats with a period of a few addresses per static load. A small
 * fraction of random keys models irregular probes.
 */
class BinaryTreeKernel : public Kernel
{
  public:
    struct Params
    {
        unsigned numNodes = 31;      ///< tree size (balanced)
        unsigned keyPeriod = 4;      ///< recurring searched keys
        double randomKeyProb = 0.05; ///< P(search random key)
    };

    explicit BinaryTreeKernel(const Params &params) : params_(params) {}

    void init(KernelContext &ctx) override;
    void step() override;
    std::string name() const override { return "btree"; }

  private:
    struct Node
    {
        std::uint64_t base = 0;
        std::uint32_t key = 0;
        int left = -1;
        int right = -1;
    };

    int build(unsigned lo, unsigned hi);
    void search(std::uint32_t key);

    Params params_;
    std::vector<Node> nodes_;
    std::vector<std::uint32_t> keySeq_;
    std::uint64_t rootVar_ = 0; ///< global holding the root pointer
    int root_ = -1;
    unsigned seqPos_ = 0;
};

/**
 * Go-style array-coded linked lists (section 2.1, footnote 2): the
 * RDS fields live in parallel arrays and the "next pointers" are
 * array indices. Loads are encoded as [array_base + 4*index] with the
 * array base as the opcode immediate, so naive base-address
 * correlation (address - full immediate) would alias all lists that
 * share the arrays — the case that motivates keeping only the 8 LSBs
 * of the offset (section 3.3).
 */
class ArrayListKernel : public Kernel
{
  public:
    struct Params
    {
        unsigned numElems = 64; ///< shared array length
        unsigned numLists = 3;  ///< lists threaded through the arrays
        unsigned listLen = 12;  ///< elements per list
    };

    explicit ArrayListKernel(const Params &params) : params_(params) {}

    void init(KernelContext &ctx) override;
    void step() override;
    std::string name() const override { return "array_list"; }

  private:
    Params params_;
    std::uint64_t valBase_ = 0;
    std::uint64_t nextBase_ = 0;
    std::vector<std::uint32_t> nextIdx_; ///< simulated next[] contents
    std::vector<std::uint32_t> heads_;
    unsigned turn_ = 0;
};

} // namespace clap

#endif // CLAP_WORKLOADS_RDS_KERNELS_HH
