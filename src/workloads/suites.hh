/**
 * @file
 * The benchmark catalog: 45 synthetic traces grouped into the paper's
 * 8 suites (section 4.1). Suite composition mirrors the qualitative
 * description in the paper:
 *
 *   INT  (8) SPECint95 — RDS traversals, trees, call-site correlation
 *   CAD  (2) CAD tools — large trees/lists, many static loads
 *   MM   (8) MMX media — long array sweeps, matrices (stride-friendly)
 *   GAM  (4) games — arrays + pointer structures + some randomness
 *   JAV  (5) Java — stack-model traffic, short procedures, repeated
 *            short strided bursts (the section-4.3 inner loop)
 *   TPC  (3) transaction processing — hash probes, long lists,
 *            randomness, heavy static-load counts (LB contention)
 *   NT   (8) NT desktop apps — broad moderate mix
 *   W95  (7) Win95 apps — broad mix with more irregularity
 *
 * Trace generation is deterministic in (name, seed); suite membership
 * is encoded in TraceSpec::suite.
 */

#ifndef CLAP_WORKLOADS_SUITES_HH
#define CLAP_WORKLOADS_SUITES_HH

#include <cstddef>
#include <string>
#include <vector>

#include "workloads/composer.hh"

namespace clap
{

/** Suite names in the paper's (alphabetical) reporting order. */
const std::vector<std::string> &suiteNames();

/** Build the full 45-trace catalog. */
std::vector<TraceSpec> buildCatalog();

/** Specs belonging to one suite, in catalog order. */
std::vector<TraceSpec> buildSuite(const std::string &suite);

/**
 * Default per-trace instruction budget for experiments. Reads the
 * CLAP_TRACE_INSTS environment variable when set (so CI or quick runs
 * can scale the experiment size), otherwise returns 200000.
 */
std::size_t defaultTraceLength();

} // namespace clap

#endif // CLAP_WORKLOADS_SUITES_HH
