/**
 * @file
 * Control-correlation kernels (paper section 2.2): a shared callee
 * whose loads depend on the call site (the xlmatch/xllastarg
 * patterns), stack-frame save/restore traffic, and the "repeated
 * short strided burst" inner loop the paper shows for Java in
 * section 4.3 (stride-hostile, context-friendly).
 */

#ifndef CLAP_WORKLOADS_CONTROL_KERNELS_HH
#define CLAP_WORKLOADS_CONTROL_KERNELS_HH

#include <cstdint>
#include <vector>

#include "workloads/kernel.hh"

namespace clap
{

/**
 * A callee function with several static loads whose addresses are
 * determined by the call site, called in a fixed recurring site
 * sequence (e.g. a-c-u-a as for xlmatch). Per static load the address
 * sequence has period = |site sequence|, so predicting it requires a
 * context history covering that period — unreachable for stride
 * predictors.
 */
class CallSiteKernel : public Kernel
{
  public:
    struct Params
    {
        unsigned numSites = 4;    ///< distinct call sites
        unsigned seqLen = 4;      ///< length of recurring site pattern
        unsigned calleeLoads = 3; ///< static loads in the callee
        double noiseProb = 0.0;   ///< P(one-off random site) per step
    };

    explicit CallSiteKernel(const Params &params) : params_(params) {}

    void init(KernelContext &ctx) override;
    void step() override;
    std::string name() const override { return "call_site"; }

    /** The recurring call-site pattern (for tests). */
    const std::vector<unsigned> &siteSequence() const { return siteSeq_; }

  private:
    void invoke(unsigned site);

    Params params_;
    std::vector<std::uint64_t> siteData_; ///< per-site argument block
    std::vector<unsigned> siteSeq_;
    std::uint64_t envVar_ = 0; ///< global environment pointer
    unsigned seqPos_ = 0;
};

/**
 * Call/return-heavy kernel with register save/restore through the
 * stack: each call pushes a frame, stores the saved registers, runs a
 * tiny body, and reloads them before returning. At a stable call
 * depth the reload addresses are constant per static load (classic
 * last-address territory); nested call mixes shift the stack pointer
 * and create short recurring address sets.
 */
class StackFrameKernel : public Kernel
{
  public:
    struct Params
    {
        unsigned maxDepth = 4;     ///< nesting depth per step
        unsigned savedRegs = 3;    ///< saved registers per frame
        unsigned bodyAlu = 4;      ///< filler ALU ops per body
    };

    explicit StackFrameKernel(const Params &params) : params_(params) {}

    void init(KernelContext &ctx) override;
    void step() override;
    std::string name() const override { return "stack_frame"; }

  private:
    void callChain(unsigned depth);

    Params params_;
};

/**
 * Repeated short strided bursts: a short run of consecutive addresses
 * (e.g. 0x939a, 0x939c, ... 0x93a6) followed by a jump to another
 * run, the whole pattern repeating exactly — the Java inner-loop
 * behaviour of section 4.3. A stride predictor keeps mispredicting at
 * every run boundary; the CAP link table learns the whole pattern.
 */
class RepeatedBurstKernel : public Kernel
{
  public:
    struct Params
    {
        unsigned numRuns = 3;   ///< strided runs per pattern
        unsigned runLen = 6;    ///< loads per run
        unsigned stride = 2;    ///< bytes between loads within a run
    };

    explicit RepeatedBurstKernel(const Params &params) : params_(params) {}

    void init(KernelContext &ctx) override;
    void step() override;
    std::string name() const override { return "repeated_burst"; }

  private:
    Params params_;
    std::vector<std::uint64_t> runBases_;
};

} // namespace clap

#endif // CLAP_WORKLOADS_CONTROL_KERNELS_HH
