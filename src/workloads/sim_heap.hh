/**
 * @file
 * Simulated address space for the synthetic workloads. Kernels build
 * their data structures (lists, trees, arrays, stacks) out of
 * simulated addresses handed out by this allocator; no real memory is
 * allocated at those addresses. The layout mimics a classic 32-bit
 * process image so generated addresses look like the IA-32 traces the
 * paper used:
 *
 *   code     0x08048000
 *   globals  0x08100000
 *   heap     0x10000000 (grows up)
 *   stack    0xbff00000 (grows down)
 */

#ifndef CLAP_WORKLOADS_SIM_HEAP_HH
#define CLAP_WORKLOADS_SIM_HEAP_HH

#include <cstdint>

#include "util/bits.hh"
#include "util/rng.hh"

namespace clap
{

/** Simulated process address-space layout constants. */
struct AddressSpace
{
    static constexpr std::uint64_t codeBase = 0x08048000;
    static constexpr std::uint64_t globalBase = 0x08100000;
    static constexpr std::uint64_t heapBase = 0x10000000;
    static constexpr std::uint64_t stackBase = 0xbff00000;
};

/**
 * Bump allocator over the simulated heap and global regions. An
 * optional fragmentation probability inserts random gaps between
 * allocations so heap addresses are not artificially contiguous
 * (contiguous RDS nodes would be stride-predictable, hiding the very
 * behaviour the paper studies).
 */
class SimHeap
{
  public:
    /**
     * @param rng           RNG used for fragmentation gaps.
     * @param fragmentation Probability of inserting a gap after an
     *                      allocation (0 disables).
     */
    explicit SimHeap(Rng &rng, double fragmentation = 0.35)
        : rng_(&rng), fragmentation_(fragmentation)
    {}

    /**
     * Allocate @p size bytes on the simulated heap.
     * @param size  Object size in bytes.
     * @param align Alignment (power of two), default 16 — RDS nodes
     *              are aligned, as the paper notes in section 3.3.
     * @return Simulated address of the object.
     */
    std::uint64_t
    alloc(std::uint64_t size, std::uint64_t align = 16)
    {
        heapTop_ = alignUp(heapTop_, align);
        const std::uint64_t addr = heapTop_;
        heapTop_ += size;
        if (fragmentation_ > 0.0 && rng_->chance(fragmentation_)) {
            // Skip 1..8 allocation-sized chunks to fragment the heap.
            heapTop_ += size * rng_->range(1, 8);
        }
        return addr;
    }

    /** Allocate @p size bytes in the simulated global region. */
    std::uint64_t
    allocGlobal(std::uint64_t size, std::uint64_t align = 8)
    {
        globalTop_ = alignUp(globalTop_, align);
        const std::uint64_t addr = globalTop_;
        globalTop_ += size;
        return addr;
    }

    /** Current top of the simulated heap. */
    std::uint64_t heapTop() const { return heapTop_; }

  private:
    Rng *rng_;
    double fragmentation_;
    std::uint64_t heapTop_ = AddressSpace::heapBase;
    std::uint64_t globalTop_ = AddressSpace::globalBase;
};

/**
 * Simulated call stack: tracks the stack pointer across call frames.
 * Used by kernels that model stack-passed parameters and spill/fill
 * accesses (the control-correlation patterns of section 2.2).
 */
class SimStack
{
  public:
    SimStack() = default;

    /** Push a frame of @p size bytes; returns the new frame base. */
    std::uint64_t
    push(std::uint64_t size)
    {
        sp_ -= alignUp(size, 16);
        ++depth_;
        return sp_;
    }

    /** Pop a frame of @p size bytes. */
    void
    pop(std::uint64_t size)
    {
        sp_ += alignUp(size, 16);
        --depth_;
    }

    std::uint64_t sp() const { return sp_; }
    unsigned depth() const { return depth_; }

  private:
    std::uint64_t sp_ = AddressSpace::stackBase;
    unsigned depth_ = 0;
};

} // namespace clap

#endif // CLAP_WORKLOADS_SIM_HEAP_HH
