#include "workloads/control_kernels.hh"

#include <cassert>

namespace clap
{

// ---------------------------------------------------------------------
// CallSiteKernel
// ---------------------------------------------------------------------

void
CallSiteKernel::init(KernelContext &ctx)
{
    bind(ctx);
    assert(params_.numSites >= 1);
    assert(params_.seqLen >= 1);
    assert(params_.calleeLoads >= 1 && params_.calleeLoads <= 6);

    // Each call site owns an argument block the callee dereferences;
    // blocks are spread over the heap so their addresses carry no
    // arithmetic relation.
    siteData_.reserve(params_.numSites);
    for (unsigned s = 0; s < params_.numSites; ++s)
        siteData_.push_back(heap_->alloc(4 * params_.calleeLoads + 16));
    envVar_ = heap_->allocGlobal(8);

    // Fixed recurring site pattern with repeat runs: "the function
    // may be called several times in a row with the same input
    // parameters. Typically, such sequences do not exceed four to
    // five repetitions" (section 3.2) — these runs are what pushes
    // the required history length to ~4.
    siteSeq_.reserve(params_.seqLen);
    while (siteSeq_.size() < params_.seqLen) {
        const auto site =
            static_cast<unsigned>(rng_->below(params_.numSites));
        const std::uint64_t repeats = rng_->range(1, 3);
        for (std::uint64_t r = 0;
             r < repeats && siteSeq_.size() < params_.seqLen; ++r) {
            siteSeq_.push_back(site);
        }
    }
}

void
CallSiteKernel::invoke(unsigned site)
{
    // Slots 0..numSites-1: the call instructions (distinct static
    // calls, giving distinct path history); slots 16.. : the callee.
    const unsigned callee_entry = 16;
    const std::uint8_t arg_reg = reg(0);
    const std::uint8_t val_reg = reg(1);
    const std::uint8_t acc_reg = reg(2);

    emit_.call(site, emit_.pc(callee_entry));
    // The callee first reads a global environment pointer (constant
    // address), then the call-site-dependent argument block.
    emit_.load(callee_entry + 7, envVar_, 0, arg_reg);
    const std::uint64_t block = siteData_[site];
    for (unsigned l = 0; l < params_.calleeLoads; ++l) {
        emit_.load(callee_entry + l, block + 4 * l,
                   static_cast<std::int32_t>(4 * l), val_reg, arg_reg);
        emit_.alu(callee_entry + 8, acc_reg, acc_reg, val_reg);
    }
    emit_.ret(callee_entry + 9);
}

void
CallSiteKernel::step()
{
    pickVariant();
    if (params_.noiseProb > 0.0 && rng_->chance(params_.noiseProb)) {
        invoke(static_cast<unsigned>(rng_->below(params_.numSites)));
        return;
    }
    invoke(siteSeq_[seqPos_]);
    seqPos_ = (seqPos_ + 1) % siteSeq_.size();
}

// ---------------------------------------------------------------------
// StackFrameKernel
// ---------------------------------------------------------------------

void
StackFrameKernel::init(KernelContext &ctx)
{
    bind(ctx);
    assert(params_.maxDepth >= 1);
    assert(params_.savedRegs >= 1 && params_.savedRegs <= 6);
}

void
StackFrameKernel::callChain(unsigned depth)
{
    // Each nesting level is a distinct static function (slot block of
    // 32), as in a real call chain A -> B -> C: at a stable depth the
    // spill/reload addresses of each function are constant, which is
    // the behaviour that makes stack references last-address
    // predictable. Slots within a level: 0 call, 1.. stores,
    // 8.. alu body, 16.. reload loads, 24 ret.
    const unsigned slot0 = 32 * (params_.maxDepth - depth);
    const std::uint8_t sp_reg = reg(0);
    const std::uint8_t tmp_reg = reg(1);

    const std::uint64_t frame_size = 16 + 4 * params_.savedRegs;
    emit_.call(slot0 + 0, emit_.pc(slot0 + 1));
    const std::uint64_t frame = stack_->push(frame_size);

    for (unsigned r = 0; r < params_.savedRegs; ++r) {
        emit_.store(slot0 + 1 + r, frame + 4 * r,
                    static_cast<std::int32_t>(4 * r), reg(2 + r), sp_reg);
    }
    for (unsigned a = 0; a < params_.bodyAlu; ++a)
        emit_.alu(slot0 + 8 + a, tmp_reg, tmp_reg);

    if (depth > 1)
        callChain(depth - 1);

    for (unsigned r = 0; r < params_.savedRegs; ++r) {
        emit_.load(slot0 + 16 + r, frame + 4 * r,
                   static_cast<std::int32_t>(4 * r), reg(2 + r), sp_reg);
    }
    emit_.ret(slot0 + 24);
    stack_->pop(frame_size);
}

void
StackFrameKernel::step()
{
    pickVariant();
    // Most invocations run at the full depth (stable stack frames,
    // whose reload addresses are constant per static load); a
    // minority recurse shallower, creating the small recurring
    // address sets of section 2.2.
    const unsigned depth = rng_->chance(0.75)
        ? params_.maxDepth
        : static_cast<unsigned>(rng_->range(1, params_.maxDepth));
    callChain(depth);
}

// ---------------------------------------------------------------------
// RepeatedBurstKernel
// ---------------------------------------------------------------------

void
RepeatedBurstKernel::init(KernelContext &ctx)
{
    bind(ctx);
    assert(params_.numRuns >= 1);
    assert(params_.runLen >= 1);

    runBases_.reserve(params_.numRuns);
    for (unsigned r = 0; r < params_.numRuns; ++r) {
        runBases_.push_back(
            heap_->alloc(params_.stride * params_.runLen + 16, 32));
    }
}

void
RepeatedBurstKernel::step()
{
    // One full pattern per step: every run swept in order, all from a
    // single static load inside a loop (slot 1).
    pickVariant();
    const std::uint8_t idx_reg = reg(0);
    const std::uint8_t val_reg = reg(1);

    emit_.alu(0, idx_reg);
    for (unsigned r = 0; r < params_.numRuns; ++r) {
        for (unsigned i = 0; i < params_.runLen; ++i) {
            emit_.load(1, runBases_[r] + i * params_.stride, 0,
                       val_reg, idx_reg);
            emit_.alu(2, idx_reg, idx_reg);
            const bool last =
                (r + 1 == params_.numRuns) && (i + 1 == params_.runLen);
            emit_.branch(3, !last, 1, val_reg);
        }
    }
}

} // namespace clap
