#include "workloads/misc_kernels.hh"

#include <cassert>

namespace clap
{

// ---------------------------------------------------------------------
// HashTableKernel
// ---------------------------------------------------------------------

void
HashTableKernel::init(KernelContext &ctx)
{
    bind(ctx);
    assert(params_.numBuckets >= 2);

    tableBase_ = heap_->allocGlobal(4ull * params_.numBuckets, 64);

    // Distribute entry nodes over buckets.
    chains_.resize(params_.numBuckets);
    for (unsigned e = 0; e < params_.numEntries; ++e) {
        const std::uint64_t node = heap_->alloc(16);
        chains_[rng_->below(params_.numBuckets)].push_back(node);
    }
    hotBuckets_.reserve(params_.hotKeys);
    for (unsigned h = 0; h < params_.hotKeys; ++h) {
        hotBuckets_.push_back(static_cast<std::uint32_t>(
            rng_->below(params_.numBuckets)));
    }
}

void
HashTableKernel::probe(std::uint32_t bucket)
{
    // Slots: 0 hash alu, 1 bucket-head load (indexed off the table
    // base, go-style immediate), 2 key load, 3 next load, 4 branch.
    const std::uint8_t key_reg = reg(0);
    const std::uint8_t ptr_reg = reg(1);
    const std::uint8_t val_reg = reg(2);

    emit_.alu(0, key_reg, key_reg);
    emit_.load(1, tableBase_ + 4ull * bucket,
               static_cast<std::int32_t>(tableBase_), ptr_reg, key_reg);
    const auto &chain = chains_[bucket];
    for (std::size_t i = 0; i < chain.size(); ++i) {
        emit_.load(2, chain[i] + 0, 0, val_reg, ptr_reg);
        emit_.load(3, chain[i] + 8, 8, ptr_reg, ptr_reg);
        emit_.branch(4, i + 1 != chain.size(), 2, val_reg);
    }
}

void
HashTableKernel::step()
{
    pickVariant();
    for (unsigned p = 0; p < params_.probesPerStep; ++p) {
        std::uint32_t bucket;
        if (!hotBuckets_.empty() && rng_->chance(params_.hotKeyProb))
            bucket = hotBuckets_[rng_->below(hotBuckets_.size())];
        else
            bucket = static_cast<std::uint32_t>(
                rng_->below(params_.numBuckets));
        probe(bucket);
    }
}

// ---------------------------------------------------------------------
// RandomPointerKernel
// ---------------------------------------------------------------------

void
RandomPointerKernel::init(KernelContext &ctx)
{
    bind(ctx);
    base_ = heap_->alloc(params_.regionBytes, 64);
}

void
RandomPointerKernel::step()
{
    pickVariant();
    const std::uint8_t ptr_reg = reg(0);
    const std::uint8_t val_reg = reg(1);

    for (unsigned i = 0; i < params_.loadsPerStep; ++i) {
        const std::uint64_t addr =
            base_ + (rng_->below(params_.regionBytes) & ~std::uint64_t{3});
        emit_.load(0, addr, 0, val_reg, ptr_reg);
        emit_.alu(1, ptr_reg, val_reg);
    }
}

// ---------------------------------------------------------------------
// GlobalScalarKernel
// ---------------------------------------------------------------------

void
GlobalScalarKernel::init(KernelContext &ctx)
{
    bind(ctx);
    assert(params_.numGlobals >= 1 && params_.numGlobals <= 16);
    globals_.reserve(params_.numGlobals);
    for (unsigned g = 0; g < params_.numGlobals; ++g)
        globals_.push_back(heap_->allocGlobal(8));
}

void
GlobalScalarKernel::step()
{
    // Each global has its own static load (slot = index): a constant
    // address per static load.
    pickVariant();
    const std::uint8_t val_reg = reg(0);
    const std::uint8_t acc_reg = reg(1);

    for (unsigned i = 0; i < params_.readsPerStep; ++i) {
        const unsigned g = pos_ % globals_.size();
        emit_.load(g, globals_[g], 0, val_reg);
        emit_.alu(16, acc_reg, acc_reg, val_reg);
        ++pos_;
    }
}

} // namespace clap
