#include "workloads/array_kernels.hh"

#include <cassert>

namespace clap
{

// ---------------------------------------------------------------------
// StrideArrayKernel
// ---------------------------------------------------------------------

void
StrideArrayKernel::init(KernelContext &ctx)
{
    bind(ctx);
    assert(params_.numArrays >= 1 && params_.numArrays <= 4);
    assert(params_.numElems >= 2);

    bases_.reserve(params_.numArrays);
    for (unsigned a = 0; a < params_.numArrays; ++a) {
        bases_.push_back(heap_->alloc(
            static_cast<std::uint64_t>(params_.numElems) *
                params_.elemSize,
            64));
    }
}

void
StrideArrayKernel::step()
{
    // Slots: 0 header, per array a: load (1+2a), alu (2+2a); last
    // slot: loop branch. Each static load sweeps its own array.
    pickVariant();
    const std::uint8_t idx_reg = reg(0);
    const std::uint8_t acc_reg = reg(1);

    emit_.alu(0, idx_reg);
    const unsigned branch_slot = 1 + 2 * params_.numArrays;
    for (unsigned c = 0; c < params_.chunk; ++c) {
        const std::uint64_t elem = pos_ % params_.numElems;
        for (unsigned a = 0; a < params_.numArrays; ++a) {
            emit_.load(1 + 2 * a,
                       bases_[a] + elem * params_.elemSize, 0,
                       reg(2 + a), idx_reg);
            emit_.alu(2 + 2 * a, acc_reg, acc_reg, reg(2 + a));
        }
        emit_.branch(branch_slot, c + 1 != params_.chunk, 1, idx_reg);
        ++pos_;
    }
}

// ---------------------------------------------------------------------
// MatrixKernel
// ---------------------------------------------------------------------

void
MatrixKernel::init(KernelContext &ctx)
{
    bind(ctx);
    assert(params_.rows >= 2 && params_.cols >= 1);
    base_ = heap_->alloc(
        static_cast<std::uint64_t>(params_.rows) * params_.cols *
            params_.elemSize,
        64);
}

void
MatrixKernel::step()
{
    // Column-major walk over a row-major matrix: address advances by
    // the row pitch each iteration and wraps to the next column at
    // the bottom of each column.
    pickVariant();
    const std::uint8_t idx_reg = reg(0);
    const std::uint8_t val_reg = reg(1);
    const std::uint8_t acc_reg = reg(2);
    const std::uint64_t pitch =
        static_cast<std::uint64_t>(params_.cols) * params_.elemSize;

    emit_.alu(0, idx_reg);
    for (unsigned c = 0; c < params_.chunk; ++c) {
        const std::uint64_t addr =
            base_ + row_ * pitch + col_ * params_.elemSize;
        emit_.load(1, addr, 0, val_reg, idx_reg);
        // The walk is induction-variable driven: the accumulator
        // consumes the value, the address register does not.
        emit_.alu(2, acc_reg, acc_reg, val_reg);
        emit_.branch(3, c + 1 != params_.chunk, 1, idx_reg);
        if (++row_ == params_.rows) {
            row_ = 0;
            col_ = (col_ + 1) % params_.cols;
        }
    }
}

} // namespace clap
