/**
 * @file
 * Array kernels: the stride-predictable access patterns (linear array
 * sweeps, matrix walks) that dominate the paper's multimedia (MM)
 * suite and that the CAP predictor, with its limited link-table
 * capacity, "can hardly handle" (section 4.2).
 */

#ifndef CLAP_WORKLOADS_ARRAY_KERNELS_HH
#define CLAP_WORKLOADS_ARRAY_KERNELS_HH

#include <cstdint>
#include <vector>

#include "workloads/kernel.hh"

namespace clap
{

/**
 * Linear sweeps over one or more large arrays with a constant element
 * stride. Long sequences of non-recurring addresses: ideal for the
 * stride predictor, pure pollution for the CAP link table. The sweep
 * restarts from the array base when it reaches the end (a single
 * stride break per pass, which the interval mechanism can learn).
 */
class StrideArrayKernel : public Kernel
{
  public:
    struct Params
    {
        unsigned numArrays = 2;    ///< interleaved arrays (A[i]+B[i])
        unsigned numElems = 4096;  ///< elements per array
        unsigned elemSize = 4;     ///< bytes per element (the stride)
        unsigned chunk = 64;       ///< elements processed per step
    };

    explicit StrideArrayKernel(const Params &params) : params_(params) {}

    void init(KernelContext &ctx) override;
    void step() override;
    std::string name() const override { return "stride_array"; }

  private:
    Params params_;
    std::vector<std::uint64_t> bases_;
    std::uint64_t pos_ = 0; ///< current element index
};

/**
 * Row-major matrix traversed by columns: the per-load stride is the
 * row pitch (large but constant), with a break at every column end.
 * Exercises non-unit strides and periodic stride breaks (interval
 * counters, section 5.2).
 */
class MatrixKernel : public Kernel
{
  public:
    struct Params
    {
        unsigned rows = 64;
        unsigned cols = 64;
        unsigned elemSize = 4;
        unsigned chunk = 64; ///< elements per step
    };

    explicit MatrixKernel(const Params &params) : params_(params) {}

    void init(KernelContext &ctx) override;
    void step() override;
    std::string name() const override { return "matrix"; }

  private:
    Params params_;
    std::uint64_t base_ = 0;
    unsigned row_ = 0;
    unsigned col_ = 0;
};

} // namespace clap

#endif // CLAP_WORKLOADS_ARRAY_KERNELS_HH
