#include "workloads/composer.hh"

#include <cassert>

namespace clap
{

std::unique_ptr<Kernel>
makeKernel(const KernelParams &params)
{
    return std::visit(
        [](const auto &p) -> std::unique_ptr<Kernel> {
            using ParamsType = std::decay_t<decltype(p)>;
            if constexpr (std::is_same_v<ParamsType,
                                         LinkedListKernel::Params>) {
                return std::make_unique<LinkedListKernel>(p);
            } else if constexpr (std::is_same_v<
                                     ParamsType,
                                     DoublyLinkedListKernel::Params>) {
                return std::make_unique<DoublyLinkedListKernel>(p);
            } else if constexpr (std::is_same_v<ParamsType,
                                                BinaryTreeKernel::Params>) {
                return std::make_unique<BinaryTreeKernel>(p);
            } else if constexpr (std::is_same_v<ParamsType,
                                                ArrayListKernel::Params>) {
                return std::make_unique<ArrayListKernel>(p);
            } else if constexpr (std::is_same_v<ParamsType,
                                                CallSiteKernel::Params>) {
                return std::make_unique<CallSiteKernel>(p);
            } else if constexpr (std::is_same_v<ParamsType,
                                                StackFrameKernel::Params>) {
                return std::make_unique<StackFrameKernel>(p);
            } else if constexpr (std::is_same_v<
                                     ParamsType,
                                     RepeatedBurstKernel::Params>) {
                return std::make_unique<RepeatedBurstKernel>(p);
            } else if constexpr (std::is_same_v<ParamsType,
                                                StrideArrayKernel::Params>) {
                return std::make_unique<StrideArrayKernel>(p);
            } else if constexpr (std::is_same_v<ParamsType,
                                                MatrixKernel::Params>) {
                return std::make_unique<MatrixKernel>(p);
            } else if constexpr (std::is_same_v<ParamsType,
                                                HashTableKernel::Params>) {
                return std::make_unique<HashTableKernel>(p);
            } else if constexpr (std::is_same_v<
                                     ParamsType,
                                     RandomPointerKernel::Params>) {
                return std::make_unique<RandomPointerKernel>(p);
            } else {
                static_assert(std::is_same_v<ParamsType,
                                             GlobalScalarKernel::Params>);
                return std::make_unique<GlobalScalarKernel>(p);
            }
        },
        params);
}

std::size_t
generateTrace(const TraceSpec &spec, std::size_t target_insts,
              TraceSink &sink)
{
    assert(!spec.kernels.empty());

    // Generation stops at the first kernel-step boundary past the
    // target; the largest step is a few hundred records, so a fixed
    // slack keeps in-memory sinks reallocation-free to the very end.
    sink.reserve(target_insts + 1024);

    Rng rng(spec.seed);
    SimHeap heap(rng);
    SimStack stack;

    // Each kernel gets a private code page and register window so
    // static PCs and dependencies never collide across kernels.
    std::vector<std::unique_ptr<Kernel>> kernels;
    kernels.reserve(spec.kernels.size());
    for (std::size_t k = 0; k < spec.kernels.size(); ++k) {
        kernels.push_back(makeKernel(spec.kernels[k].params));
        KernelContext ctx;
        ctx.rng = &rng;
        ctx.heap = &heap;
        ctx.stack = &stack;
        ctx.sink = &sink;
        ctx.codeBase = AddressSpace::codeBase + 0x10000 * (k + 1);
        ctx.codeVariants = spec.kernels[k].variants;
        ctx.regBase = static_cast<std::uint8_t>(1 + 16 * (k % 15));
        ctx.regCount = 16;
        kernels.back()->init(ctx);
    }

    // Deficit scheduling: weights are target shares of emitted
    // records. Each round picks the kernel furthest behind its
    // share and runs it for a short burst, so kernels with small
    // steps (a call site emits ~5 records) still reach their share
    // against kernels with big steps (an array sweep emits hundreds).
    std::vector<double> emitted(kernels.size(), 0.0);
    const std::size_t start = sink.size();
    while (sink.size() - start < target_insts) {
        std::size_t pick = 0;
        double best = emitted[0] / spec.kernels[0].weight;
        for (std::size_t k = 1; k < kernels.size(); ++k) {
            const double deficit = emitted[k] / spec.kernels[k].weight;
            if (deficit < best) {
                best = deficit;
                pick = k;
            }
        }
        const std::uint64_t burst = rng.range(1, 3);
        for (std::uint64_t b = 0;
             b < burst && sink.size() - start < target_insts; ++b) {
            const std::size_t before = sink.size();
            kernels[pick]->step();
            emitted[pick] +=
                static_cast<double>(sink.size() - before);
        }
    }
    return sink.size() - start;
}

Trace
generateTrace(const TraceSpec &spec, std::size_t target_insts)
{
    Trace trace(spec.name);
    generateTrace(spec, target_insts, trace); // reserves via the sink
    return trace;
}

} // namespace clap
