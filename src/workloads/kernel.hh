/**
 * @file
 * Workload-kernel framework. A Kernel is a small synthetic program
 * fragment that owns simulated data structures and emits trace records
 * when stepped. The TraceComposer interleaves several kernels into one
 * trace, mimicking a real program alternating between activities.
 *
 * Kernels emit *complete* instruction sequences (address computation,
 * compares, branches around loops, calls/returns), not just loads, so
 * that the timing simulator sees realistic dependency chains: in a
 * pointer chase the next load's address register is the previous
 * load's destination, which is exactly why the paper argues address
 * prediction is the enabler for parallel execution on RDS code
 * (section 2, footnote 2).
 */

#ifndef CLAP_WORKLOADS_KERNEL_HH
#define CLAP_WORKLOADS_KERNEL_HH

#include <cstdint>
#include <string>

#include "trace/trace.hh"
#include "workloads/sim_heap.hh"

namespace clap
{

/**
 * Environment handed to a kernel at initialization: shared RNG, heap,
 * stack, the sink to emit into, and the kernel's private code region
 * and architectural register range.
 */
struct KernelContext
{
    Rng *rng = nullptr;
    SimHeap *heap = nullptr;
    SimStack *stack = nullptr;
    TraceSink *sink = nullptr;
    std::uint64_t codeBase = AddressSpace::codeBase;
    std::uint8_t regBase = 1;   ///< first register id owned by kernel
    std::uint8_t regCount = 16; ///< number of registers owned

    /**
     * Number of static code copies of the kernel (think inlining /
     * unrolled call sites). Each step randomly executes one copy;
     * all copies share the kernel's data structures. Raising this
     * multiplies the static-load count — the knob behind the paper's
     * "applications featuring a higher number of static loads"
     * (CAD, JAVA, NT, TPC, W95 in figure 6).
     */
    unsigned codeVariants = 1;
};

/**
 * Helper that formats and appends trace records. Static instructions
 * are identified by small per-kernel slot numbers; slot s maps to
 * pc = codeBase + 4*s, so each kernel's static loads have stable PCs
 * across the whole trace (a prerequisite for per-static-load
 * prediction).
 */
class Emitter
{
  public:
    Emitter() = default;
    explicit Emitter(const KernelContext &ctx)
        : sink_(ctx.sink), codeBase_(ctx.codeBase)
    {}

    /** Select which static code copy subsequent slots map into. */
    void setVariant(unsigned variant) { variant_ = variant; }

    /** PC of static slot @p slot in the current code variant. */
    std::uint64_t
    pc(unsigned slot) const
    {
        return codeBase_ + variantStride * variant_ + 4 * slot;
    }

    /** Simple one-cycle ALU op. */
    void
    alu(unsigned slot, std::uint8_t dst, std::uint8_t src_a = 0,
        std::uint8_t src_b = 0)
    {
        TraceRecord rec;
        rec.pc = pc(slot);
        rec.cls = InstClass::Alu;
        rec.dst = dst;
        rec.srcA = src_a;
        rec.srcB = src_b;
        sink_->append(rec);
    }

    /**
     * Load from simulated address @p addr with opcode immediate
     * @p imm. @p addr_reg is the register holding the base (creates
     * the dependency), @p dst receives the loaded value.
     */
    void
    load(unsigned slot, std::uint64_t addr, std::int32_t imm,
         std::uint8_t dst, std::uint8_t addr_reg = 0,
         std::uint8_t size = 4)
    {
        TraceRecord rec;
        rec.pc = pc(slot);
        rec.cls = InstClass::Load;
        rec.effAddr = addr;
        rec.immOffset = imm;
        rec.dst = dst;
        rec.srcA = addr_reg;
        rec.memSize = size;
        sink_->append(rec);
    }

    /** Store of @p val_reg to simulated address @p addr. */
    void
    store(unsigned slot, std::uint64_t addr, std::int32_t imm,
          std::uint8_t val_reg, std::uint8_t addr_reg = 0,
          std::uint8_t size = 4)
    {
        TraceRecord rec;
        rec.pc = pc(slot);
        rec.cls = InstClass::Store;
        rec.effAddr = addr;
        rec.immOffset = imm;
        rec.srcA = val_reg;
        rec.srcB = addr_reg;
        rec.memSize = size;
        sink_->append(rec);
    }

    /** Conditional branch at @p slot targeting @p target_slot. */
    void
    branch(unsigned slot, bool taken, unsigned target_slot,
           std::uint8_t cond_reg = 0)
    {
        TraceRecord rec;
        rec.pc = pc(slot);
        rec.cls = InstClass::Branch;
        rec.taken = taken;
        rec.target = pc(target_slot);
        rec.srcA = cond_reg;
        sink_->append(rec);
    }

    /** Call from @p slot to absolute target PC @p target_pc. */
    void
    call(unsigned slot, std::uint64_t target_pc)
    {
        TraceRecord rec;
        rec.pc = pc(slot);
        rec.cls = InstClass::Call;
        rec.target = target_pc;
        sink_->append(rec);
    }

    /** Return executed at @p slot. */
    void
    ret(unsigned slot)
    {
        TraceRecord rec;
        rec.pc = pc(slot);
        rec.cls = InstClass::Ret;
        sink_->append(rec);
    }

  private:
    /** Byte distance between code variants (256 slots each). */
    static constexpr std::uint64_t variantStride = 0x400;

    TraceSink *sink_ = nullptr;
    std::uint64_t codeBase_ = 0;
    unsigned variant_ = 0;
};

/**
 * Base class for workload kernels. Lifecycle: construct with
 * parameters, init() once with the context (build data structures),
 * then step() repeatedly; each step emits one bounded unit of work.
 */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    /** Bind to a context and build the kernel's data structures. */
    virtual void init(KernelContext &ctx) = 0;

    /** Emit one unit of work (roughly 10..300 instructions). */
    virtual void step() = 0;

    /** Kernel family name for diagnostics. */
    virtual std::string name() const = 0;

  protected:
    /** Stash the parts of the context kernels always need. */
    void
    bind(KernelContext &ctx)
    {
        rng_ = ctx.rng;
        heap_ = ctx.heap;
        stack_ = ctx.stack;
        emit_ = Emitter(ctx);
        regBase_ = ctx.regBase;
        regCount_ = ctx.regCount;
        codeVariants_ = ctx.codeVariants;
    }

    /**
     * Select a random code variant for this step. Every kernel calls
     * this at the top of step().
     */
    void
    pickVariant()
    {
        if (codeVariants_ > 1)
            emit_.setVariant(
                static_cast<unsigned>(rng_->below(codeVariants_)));
    }

    /** The kernel's @p i-th private register. */
    std::uint8_t
    reg(unsigned i) const
    {
        return static_cast<std::uint8_t>(regBase_ + i % regCount_);
    }

    Rng *rng_ = nullptr;
    SimHeap *heap_ = nullptr;
    SimStack *stack_ = nullptr;
    Emitter emit_;
    std::uint8_t regBase_ = 1;
    std::uint8_t regCount_ = 16;
    unsigned codeVariants_ = 1;
};

} // namespace clap

#endif // CLAP_WORKLOADS_KERNEL_HH
