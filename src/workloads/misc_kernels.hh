/**
 * @file
 * Miscellaneous kernels: hash-table probing (mostly irregular with
 * short bucket chains — the pollution source motivating the PF bits
 * of section 3.5), fully random pointer chasing, and global-scalar
 * reads (the constant-address loads that last-address predictors
 * capture, ~40% of all loads per section 1).
 */

#ifndef CLAP_WORKLOADS_MISC_KERNELS_HH
#define CLAP_WORKLOADS_MISC_KERNELS_HH

#include <cstdint>
#include <vector>

#include "workloads/kernel.hh"

namespace clap
{

/**
 * Open-hashing table probed with random keys. Each probe loads the
 * bucket head (go-style indexed load off the table base) and walks a
 * short chain of entry nodes. Bucket choice is random, so the bucket
 * load is unpredictable by construction; chains are revisited often
 * enough to give the link table something to (wrongly) learn unless
 * pollution control filters it.
 */
class HashTableKernel : public Kernel
{
  public:
    struct Params
    {
        unsigned numBuckets = 256;
        unsigned numEntries = 512;
        unsigned probesPerStep = 16;
        double hotKeyProb = 0.2; ///< P(probe one of a few hot keys)
        unsigned hotKeys = 4;
    };

    explicit HashTableKernel(const Params &params) : params_(params) {}

    void init(KernelContext &ctx) override;
    void step() override;
    std::string name() const override { return "hash_table"; }

  private:
    void probe(std::uint32_t bucket);

    Params params_;
    std::uint64_t tableBase_ = 0;
    std::vector<std::vector<std::uint64_t>> chains_;
    std::vector<std::uint32_t> hotBuckets_;
};

/**
 * Pure random loads over a large region: the "completely
 * unpredictable by nature" loads of section 3.5 that trash the link
 * table when pollution control is off.
 */
class RandomPointerKernel : public Kernel
{
  public:
    struct Params
    {
        std::uint64_t regionBytes = 1 << 20;
        unsigned loadsPerStep = 16;
    };

    explicit RandomPointerKernel(const Params &params) : params_(params) {}

    void init(KernelContext &ctx) override;
    void step() override;
    std::string name() const override { return "random_ptr"; }

  private:
    Params params_;
    std::uint64_t base_ = 0;
};

/**
 * Reads of a fixed set of global scalars in a loop: constant
 * per-static-load addresses (global scalar variables, read-only
 * constants). Trivially last-address/stride(0) predictable.
 */
class GlobalScalarKernel : public Kernel
{
  public:
    struct Params
    {
        unsigned numGlobals = 8;
        unsigned readsPerStep = 16;
    };

    explicit GlobalScalarKernel(const Params &params) : params_(params) {}

    void init(KernelContext &ctx) override;
    void step() override;
    std::string name() const override { return "global_scalar"; }

  private:
    Params params_;
    std::vector<std::uint64_t> globals_;
    unsigned pos_ = 0;
};

} // namespace clap

#endif // CLAP_WORKLOADS_MISC_KERNELS_HH
