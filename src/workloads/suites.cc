#include "workloads/suites.hh"

#include <cstdlib>

namespace clap
{

namespace
{

/** Deterministic seed per trace: suite id mixed with trace index. */
std::uint64_t
traceSeed(unsigned suite_id, unsigned index)
{
    return 0x5eedull * 1000003ull + suite_id * 7919ull + index * 104729ull;
}

/** Convenience builder for a trace spec. */
class SpecBuilder
{
  public:
    SpecBuilder(const std::string &suite, unsigned suite_id,
                unsigned index, const std::string &tag)
    {
        spec_.suite = suite;
        spec_.name = suite + "_" + tag;
        spec_.seed = traceSeed(suite_id, index);
    }

    SpecBuilder &
    add(KernelParams params, double weight, unsigned variants = 1)
    {
        spec_.kernels.push_back({std::move(params), weight, variants});
        return *this;
    }

    TraceSpec take() { return std::move(spec_); }

  private:
    TraceSpec spec_;
};

void
buildInt(std::vector<TraceSpec> &out)
{
    // SPECint-like: RDS traversals and control correlation on top of
    // the usual base of constant-address loads (globals, stable
    // stack), with an irregular hash/pointer fraction.
    static const char *tags[8] = {"list", "tree", "xlisp", "go",
                                  "cmp", "parse", "mix1", "mix2"};
    for (unsigned i = 0; i < 8; ++i) {
        SpecBuilder b("INT", 2, i, tags[i]);
        b.add(LinkedListKernel::Params{
                  .numNodes = 8 + 4 * (i % 5),
                  .numDataFields = 1 + i % 3,
                  .mutateProb = 0.06},
              2.0);
        b.add(BinaryTreeKernel::Params{
                  .numNodes = 95 + 32 * (i % 3),
                  .keyPeriod = 4 + i % 3,
                  .randomKeyProb = 0.04},
              1.3);
        b.add(CallSiteKernel::Params{
                  .numSites = 3 + i % 3,
                  .seqLen = 5 + i % 3,
                  .calleeLoads = 3},
              1.8);
        b.add(DoublyLinkedListKernel::Params{.numNodes = 8 + i % 6},
              1.4);
        b.add(RepeatedBurstKernel::Params{
                  .numRuns = 2 + i % 2, .runLen = 5, .stride = 4},
              0.8);
        b.add(StackFrameKernel::Params{.maxDepth = 3, .savedRegs = 3},
              2.0);
        b.add(GlobalScalarKernel::Params{
                  .numGlobals = 8, .readsPerStep = 24},
              3.0);
        b.add(StrideArrayKernel::Params{
                  .numArrays = 1, .numElems = 256, .chunk = 32},
              1.0);
        b.add(HashTableKernel::Params{
                  .numBuckets = 256,
                  .numEntries = 512,
                  .probesPerStep = 8},
              1.0);
        if (i % 2 == 0) {
            b.add(ArrayListKernel::Params{
                      .numElems = 64, .numLists = 3, .listLen = 10},
                  1.0);
        }
        out.push_back(b.take());
    }
}

void
buildCad(std::vector<TraceSpec> &out)
{
    // CAD tools: large structures and many static loads (variants).
    static const char *tags[2] = {"cat", "mic"};
    for (unsigned i = 0; i < 2; ++i) {
        SpecBuilder b("CAD", 0, i, tags[i]);
        b.add(BinaryTreeKernel::Params{
                  .numNodes = 127 + 64 * i,
                  .keyPeriod = 5,
                  .randomKeyProb = 0.06},
              1.8, 4);
        b.add(LinkedListKernel::Params{
                  .numNodes = 32, .numDataFields = 3, .mutateProb = 0.08},
              1.6, 8);
        b.add(LinkedListKernel::Params{
                  .numNodes = 12, .numDataFields = 2, .mutateProb = 0.05},
              1.2, 8);
        b.add(MatrixKernel::Params{
                  .rows = 96, .cols = 64, .chunk = 64},
              1.0, 2);
        b.add(CallSiteKernel::Params{
                  .numSites = 5, .seqLen = 6, .calleeLoads = 4},
              1.2, 8);
        b.add(HashTableKernel::Params{
                  .numBuckets = 512,
                  .numEntries = 1024,
                  .probesPerStep = 12},
              1.4, 4);
        b.add(StrideArrayKernel::Params{
                  .numArrays = 2, .numElems = 512, .chunk = 48},
              1.4, 2);
        b.add(StackFrameKernel::Params{.maxDepth = 4, .savedRegs = 3},
              2.0, 6);
        b.add(GlobalScalarKernel::Params{
                  .numGlobals = 8, .readsPerStep = 24},
              3.0, 6);
        b.add(RandomPointerKernel::Params{.loadsPerStep = 10}, 0.6);
        out.push_back(b.take());
    }
}

void
buildMm(std::vector<TraceSpec> &out)
{
    // Multimedia: long regular array sweeps dominate (stride-friendly,
    // too long for the LT), plus short coefficient loops and lookup
    // tables (context-friendly) and some data-dependent probing.
    static const char *tags[8] = {"aud", "ind", "ine", "mpa",
                                  "mpg", "mpv", "cws", "cwc"};
    for (unsigned i = 0; i < 8; ++i) {
        SpecBuilder b("MM", 4, i, tags[i]);
        b.add(StrideArrayKernel::Params{
                  .numArrays = 2 + i % 3,
                  .numElems = 8192,
                  .elemSize = 4 + 4 * (i % 2),
                  .chunk = 128},
              3.0);
        b.add(MatrixKernel::Params{
                  .rows = 128, .cols = 128, .chunk = 128},
              1.4);
        b.add(StrideArrayKernel::Params{
                  .numArrays = 1, .numElems = 16384, .chunk = 96},
              1.2);
        b.add(RepeatedBurstKernel::Params{
                  .numRuns = 3, .runLen = 4 + i % 3, .stride = 4},
              1.6);
        b.add(GlobalScalarKernel::Params{
                  .numGlobals = 10, .readsPerStep = 32},
              2.6);
        b.add(HashTableKernel::Params{
                  .numBuckets = 256,
                  .numEntries = 512,
                  .probesPerStep = 16,
                  .hotKeyProb = 0.3},
              1.5);
        b.add(LinkedListKernel::Params{
                  .numNodes = 6, .numDataFields = 1},
              0.4);
        out.push_back(b.take());
    }
}

void
buildGam(std::vector<TraceSpec> &out)
{
    static const char *tags[4] = {"duk", "fal", "mec", "qk"};
    for (unsigned i = 0; i < 4; ++i) {
        SpecBuilder b("GAM", 1, i, tags[i]);
        b.add(StrideArrayKernel::Params{
                  .numArrays = 2, .numElems = 512, .chunk = 64},
              1.6);
        b.add(LinkedListKernel::Params{
                  .numNodes = 10 + 2 * i,
                  .numDataFields = 2,
                  .mutateProb = 0.06},
              1.5);
        b.add(CallSiteKernel::Params{
                  .numSites = 4, .seqLen = 4, .calleeLoads = 3},
              1.0);
        b.add(BinaryTreeKernel::Params{
                  .numNodes = 127, .keyPeriod = 5, .randomKeyProb = 0.05},
              1.0);
        b.add(StackFrameKernel::Params{.maxDepth = 3, .savedRegs = 3},
              1.8);
        b.add(RepeatedBurstKernel::Params{
                  .numRuns = 2, .runLen = 6, .stride = 4},
              0.6);
        b.add(RandomPointerKernel::Params{.loadsPerStep = 10}, 0.7);
        b.add(HashTableKernel::Params{
                  .numBuckets = 256,
                  .numEntries = 512,
                  .probesPerStep = 10},
              0.9);
        b.add(GlobalScalarKernel::Params{
                  .numGlobals = 8, .readsPerStep = 24},
              2.8);
        out.push_back(b.take());
    }
}

void
buildJav(std::vector<TraceSpec> &out)
{
    // Java: stack-machine traffic, short procedures, many memory
    // operations, plus the section-4.3 repeated short strided bursts.
    static const char *tags[5] = {"3dg", "aud", "cfc", "cwc", "jit"};
    for (unsigned i = 0; i < 5; ++i) {
        SpecBuilder b("JAV", 3, i, tags[i]);
        b.add(StackFrameKernel::Params{
                  .maxDepth = 4 + i % 3, .savedRegs = 4, .bodyAlu = 2},
              3.0, 4);
        b.add(RepeatedBurstKernel::Params{
                  .numRuns = 3 + i % 2,
                  .runLen = 5 + i % 3,
                  .stride = 2},
              1.8);
        b.add(CallSiteKernel::Params{
                  .numSites = 4, .seqLen = 5, .calleeLoads = 3},
              1.5, 4);
        b.add(GlobalScalarKernel::Params{
                  .numGlobals = 12, .readsPerStep = 32},
              3.0, 4);
        b.add(LinkedListKernel::Params{
                  .numNodes = 10, .numDataFields = 1},
              1.0);
        b.add(HashTableKernel::Params{
                  .numBuckets = 128,
                  .numEntries = 256,
                  .probesPerStep = 8},
              0.6);
        b.add(DoublyLinkedListKernel::Params{.numNodes = 8}, 0.5);
        out.push_back(b.take());
    }
}

void
buildTpc(std::vector<TraceSpec> &out)
{
    // Transaction processing: hash probes, long volatile lists,
    // randomness; variants raise the static-load count to produce
    // the LB contention the paper reports.
    static const char *tags[3] = {"t23", "t33", "tb"};
    for (unsigned i = 0; i < 3; ++i) {
        SpecBuilder b("TPC", 6, i, tags[i]);
        b.add(HashTableKernel::Params{
                  .numBuckets = 512,
                  .numEntries = 1024,
                  .probesPerStep = 24,
                  .hotKeyProb = 0.3},
              2.0, 8);
        b.add(HashTableKernel::Params{
                  .numBuckets = 256,
                  .numEntries = 512,
                  .probesPerStep = 16},
              1.5, 8);
        b.add(RandomPointerKernel::Params{.loadsPerStep = 12}, 0.9);
        b.add(LinkedListKernel::Params{
                  .numNodes = 48, .numDataFields = 2, .mutateProb = 0.05},
              1.5, 8);
        b.add(StrideArrayKernel::Params{
                  .numArrays = 1, .numElems = 4096, .chunk = 48},
              1.0);
        b.add(CallSiteKernel::Params{
                  .numSites = 6,
                  .seqLen = 8,
                  .calleeLoads = 3,
                  .noiseProb = 0.1},
              1.0, 8);
        b.add(StackFrameKernel::Params{.maxDepth = 4, .savedRegs = 3},
              2.0, 8);
        b.add(GlobalScalarKernel::Params{
                  .numGlobals = 10, .readsPerStep = 24},
              3.0, 8);
        out.push_back(b.take());
    }
}

void
buildDesktop(std::vector<TraceSpec> &out, const std::string &suite,
             unsigned suite_id, unsigned count, const char **tags,
             double irregularity)
{
    // NT / W95: broad moderate mixes with many static loads; W95
    // passes higher irregularity.
    for (unsigned i = 0; i < count; ++i) {
        SpecBuilder b(suite, suite_id, i, tags[i]);
        b.add(LinkedListKernel::Params{
                  .numNodes = 12 + 2 * (i % 4),
                  .numDataFields = 2,
                  .mutateProb = 0.05 * irregularity},
              1.2, 6);
        b.add(BinaryTreeKernel::Params{
                  .numNodes = 127,
                  .keyPeriod = 5,
                  .randomKeyProb = 0.05 * irregularity},
              1.0, 4);
        b.add(CallSiteKernel::Params{
                  .numSites = 4,
                  .seqLen = 5 + i % 3,
                  .calleeLoads = 3,
                  .noiseProb = 0.05 * irregularity},
              1.4, 6);
        b.add(RepeatedBurstKernel::Params{
                  .numRuns = 3, .runLen = 5, .stride = 4},
              0.8);
        b.add(StackFrameKernel::Params{.maxDepth = 4, .savedRegs = 3},
              2.0, 6);
        b.add(GlobalScalarKernel::Params{
                  .numGlobals = 10, .readsPerStep = 24},
              3.0, 6);
        b.add(StrideArrayKernel::Params{
                  .numArrays = 2, .numElems = 512, .chunk = 48},
              1.2);
        b.add(HashTableKernel::Params{
                  .numBuckets = 256,
                  .numEntries = 512,
                  .probesPerStep = 12,
                  .hotKeyProb = 0.25},
              0.8 * irregularity, 4);
        b.add(MatrixKernel::Params{.rows = 64, .cols = 64, .chunk = 48},
              0.6);
        b.add(DoublyLinkedListKernel::Params{.numNodes = 10}, 1.0);
        b.add(RandomPointerKernel::Params{.loadsPerStep = 8},
              0.4 * irregularity);
        out.push_back(b.take());
    }
}

} // namespace

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {
        "CAD", "GAM", "INT", "JAV", "MM", "NT", "TPC", "W95"};
    return names;
}

std::vector<TraceSpec>
buildCatalog()
{
    std::vector<TraceSpec> specs;
    specs.reserve(45);
    buildCad(specs);
    buildGam(specs);
    buildInt(specs);
    buildJav(specs);
    buildMm(specs);
    static const char *nt_tags[8] = {"xin", "cdw", "exl", "frl",
                                     "pdx", "pmk", "pwp", "wdp"};
    buildDesktop(specs, "NT", 5, 8, nt_tags, 1.0);
    buildTpc(specs);
    static const char *w95_tags[7] = {"cdw", "exl", "frl", "prx",
                                      "pwp", "wdp", "wwd"};
    buildDesktop(specs, "W95", 7, 7, w95_tags, 1.6);
    return specs;
}

std::vector<TraceSpec>
buildSuite(const std::string &suite)
{
    std::vector<TraceSpec> result;
    for (auto &spec : buildCatalog()) {
        if (spec.suite == suite)
            result.push_back(std::move(spec));
    }
    return result;
}

std::size_t
defaultTraceLength()
{
    if (const char *env = std::getenv("CLAP_TRACE_INSTS")) {
        const long val = std::atol(env);
        if (val > 0)
            return static_cast<std::size_t>(val);
    }
    return 200000;
}

} // namespace clap
