/**
 * @file
 * Predictor snapshot tooling: demonstrate the versioned state
 * serialization API (core/state_io.hh) and double as the small
 * command-line utility the CI chaos-smoke job scripts against:
 *
 *   state_tool                         # usage
 *   state_tool demo [predictor]        # capture/restore round trip
 *   state_tool inspect FILE            # walk header/sections/CRCs
 *   state_tool verify FILE             # restore into a predictor + audit
 *   state_tool verify FILE --salvage   # recover intact sections only
 *
 * The demo runs a predictor over the first half of a trace, snapshots
 * it, restores the snapshot into a fresh instance, and replays the
 * second half through both — the restored predictor must produce
 * bit-for-bit identical PredictionStats (the state_io contract).
 *
 * verify builds a default-configuration predictor of the kind named
 * in the snapshot header; snapshots captured from non-default table
 * geometries fail the geometry check and are reported as such.
 *
 * Exit codes (scriptable, mirroring trace_tool):
 *   0  success
 *   1  usage error
 *   2  write failure (demo)
 *   3  cannot open the input file
 *   4  input file is corrupt / fails to restore or audit
 *   5  file was damaged but the intact sections were salvaged
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/cap_predictor.hh"
#include "core/hybrid_predictor.hh"
#include "core/last_address_predictor.hh"
#include "core/state_io.hh"
#include "core/stride_predictor.hh"
#include "sim/predictor_sim.hh"
#include "workloads/composer.hh"
#include "workloads/suites.hh"

namespace
{

using namespace clap;

enum ExitCode
{
    exitOk = 0,
    exitUsage = 1,
    exitWriteFailure = 2,
    exitOpenFailure = 3,
    exitCorrupt = 4,
    exitSalvaged = 5,
};

/** Default-configuration predictor of the named kind, or null. */
std::unique_ptr<AddressPredictor>
makePredictor(const std::string &name)
{
    if (name == "hybrid")
        return std::make_unique<HybridPredictor>(HybridConfig{});
    if (name == "cap")
        return std::make_unique<CapPredictor>(CapPredictorConfig{});
    if (name == "stride")
        return std::make_unique<StridePredictor>(StridePredictorConfig{});
    if (name == "last")
        return std::make_unique<LastAddressPredictor>(LastAddressConfig{});
    return nullptr;
}

const char *
sectionName(std::uint32_t id)
{
    switch (static_cast<StateSection>(id)) {
      case StateSection::CapGates:    return "cap-gates";
      case StateSection::StrideGates: return "stride-gates";
      case StateSection::LinkTable:   return "link-table";
      case StateSection::LoadBuffer:  return "load-buffer";
    }
    return id >= firstCallerSection ? "caller" : "unknown";
}

int
errorExit(const Error &error)
{
    std::fprintf(stderr, "state_tool: %s\n", error.str().c_str());
    return error.code() == ErrorCode::IoError ? exitOpenFailure
                                              : exitCorrupt;
}

int
inspect(const std::string &path)
{
    const auto info = inspectStateFile(path);
    if (!info)
        return errorExit(info.error());

    std::printf("%s: format v%u, predictor '%s', %u sections "
                "promised\n",
                path.c_str(), info->version, info->predictor.c_str(),
                info->sections);
    std::printf("\n  %-8s %-14s %10s  %s\n", "id", "section", "bytes",
                "intact");
    for (const StateSectionInfo &section : info->sectionInfo) {
        std::printf("  0x%-6x %-14s %10llu  %s\n", section.id,
                    sectionName(section.id),
                    static_cast<unsigned long long>(section.length),
                    section.intact ? "yes" : "NO");
    }
    std::printf("\n  footer CRC: %s\n",
                info->footerOk ? "ok" : "missing or mismatched");
    std::printf("  verdict:    %s\n",
                info->complete ? "complete"
                               : "damaged (verify --salvage can "
                                 "recover the intact sections)");
    return info->complete ? exitOk : exitCorrupt;
}

int
verify(const std::string &path, bool salvage)
{
    const auto info = inspectStateFile(path);
    if (!info)
        return errorExit(info.error());

    std::unique_ptr<AddressPredictor> pred =
        makePredictor(info->predictor);
    if (!pred) {
        std::fprintf(stderr,
                     "state_tool: snapshot is for predictor '%s', "
                     "which this tool cannot build\n",
                     info->predictor.c_str());
        return exitUsage;
    }

    StateReadOptions options;
    options.salvage = salvage;
    const auto read = readPredictorState(path, *pred, options);
    if (!read) {
        std::fprintf(stderr, "state_tool: %s\n",
                     read.error().str().c_str());
        if (!salvage && read.error().code() != ErrorCode::IoError) {
            std::fprintf(stderr,
                         "state_tool: hint: retry with --salvage to "
                         "recover the intact sections\n");
        }
        return read.error().code() == ErrorCode::IoError
            ? exitOpenFailure
            : exitCorrupt;
    }

    std::printf("%s: restored %u of %u sections into a fresh '%s' "
                "predictor\n",
                path.c_str(), read->restored, read->sections,
                info->predictor.c_str());
    if (read->salvaged) {
        std::fprintf(stderr, "state_tool: salvaged restore; dropped:");
        for (std::uint32_t id : read->droppedSections)
            std::fprintf(stderr, " %s(0x%x)", sectionName(id), id);
        std::fprintf(stderr, "\n");
    }
    if (auto audited = pred->audit(); !audited) {
        std::fprintf(stderr,
                     "state_tool: restored predictor fails audit: "
                     "%s\n",
                     audited.error().str().c_str());
        return exitCorrupt;
    }
    std::printf("restored predictor passes the structural audit\n");
    return read->salvaged ? exitSalvaged : exitOk;
}

int
demo(const std::string &kind)
{
    std::unique_ptr<AddressPredictor> original = makePredictor(kind);
    if (!original) {
        std::fprintf(stderr,
                     "state_tool: unknown predictor '%s' (hybrid, "
                     "cap, stride, last)\n",
                     kind.c_str());
        return exitUsage;
    }

    // Warm the predictor on the first half of a mixed trace.
    const TraceSpec spec = buildSuite("INT").front();
    const Trace trace = generateTrace(spec, 200000);
    Trace firstHalf;
    Trace secondHalf;
    const std::size_t mid = trace.size() / 2;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        (i < mid ? firstHalf : secondHalf).append(trace.records()[i]);
    }
    std::printf("warming '%s' on %zu records of %s...\n", kind.c_str(),
                firstHalf.size(), spec.name.c_str());
    runPredictorSim(firstHalf, *original, {});

    // Snapshot mid-run, restore into a fresh instance.
    const std::string path = "/tmp/" + kind + ".state";
    if (auto written = writePredictorState(*original, path); !written) {
        std::fprintf(stderr, "state_tool: %s\n",
                     written.error().str().c_str());
        return exitWriteFailure;
    }
    std::printf("wrote %s\n", path.c_str());

    std::unique_ptr<AddressPredictor> restored = makePredictor(kind);
    if (auto read = readPredictorState(path, *restored); !read) {
        std::fprintf(stderr, "state_tool: %s\n",
                     read.error().str().c_str());
        return exitCorrupt;
    }
    std::printf("restored the snapshot into a fresh '%s'\n",
                kind.c_str());

    // The contract: both must now behave identically, counter for
    // counter, on the continuation.
    const PredictionStats contOriginal =
        runPredictorSim(secondHalf, *original, {});
    const PredictionStats contRestored =
        runPredictorSim(secondHalf, *restored, {});
    if (!(contOriginal == contRestored)) {
        std::fprintf(stderr,
                     "state_tool: DIVERGED on the continuation "
                     "(original spec=%llu correct=%llu, restored "
                     "spec=%llu correct=%llu)\n",
                     static_cast<unsigned long long>(contOriginal.spec),
                     static_cast<unsigned long long>(
                         contOriginal.specCorrect),
                     static_cast<unsigned long long>(contRestored.spec),
                     static_cast<unsigned long long>(
                         contRestored.specCorrect));
        return exitCorrupt;
    }
    std::printf("continuation over %zu records: original and "
                "restored stats are identical (%llu speculations, "
                "%llu correct)\n",
                secondHalf.size(),
                static_cast<unsigned long long>(contOriginal.spec),
                static_cast<unsigned long long>(
                    contOriginal.specCorrect));
    return inspect(path);
}

void
usage(const char *argv0)
{
    std::printf("usage: %s demo [predictor]         # hybrid, cap, "
                "stride, last\n"
                "       %s inspect <file>\n"
                "       %s verify <file> [--salvage]\n",
                argv0, argv0, argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(argv[0]);
        return exitOk;
    }

    const std::string command = argv[1];
    if (command == "demo")
        return demo(argc > 2 ? argv[2] : "hybrid");
    if (command == "inspect" && argc >= 3)
        return inspect(argv[2]);
    if (command == "verify" && argc >= 3) {
        const bool salvage =
            argc > 3 && std::strcmp(argv[3], "--salvage") == 0;
        return verify(argv[2], salvage);
    }

    usage(argv[0]);
    return exitUsage;
}
