/**
 * @file
 * Pointer-chasing workload end to end: generate a synthetic trace
 * with the workload kernels (linked lists + arrays + globals), run
 * all four predictors over it, and show the processor-level speedup
 * on the out-of-order timing model.
 *
 * This is the paper's core argument in one program: on recursive
 * data structures, successive load addresses depend on each other,
 * so address prediction — not wider issue — is what unlocks
 * parallelism (section 2).
 *
 * Build & run:  ./build/examples/pointer_chasing
 */

#include <cstdio>
#include <memory>

#include "core/cap_predictor.hh"
#include "core/hybrid_predictor.hh"
#include "core/last_address_predictor.hh"
#include "core/stride_predictor.hh"
#include "sim/predictor_sim.hh"
#include "sim/timing_sim.hh"
#include "util/table.hh"
#include "workloads/composer.hh"

#include <iostream>

int
main()
{
    using namespace clap;

    // A small program: two linked lists with several data fields, a
    // binary tree, an array sweep and some globals.
    TraceSpec spec;
    spec.name = "pointer_chasing";
    spec.suite = "demo";
    spec.seed = 2026;
    spec.kernels.push_back(
        {LinkedListKernel::Params{
             .numNodes = 20, .numDataFields = 2, .mutateProb = 0.02},
         2.0, 1});
    spec.kernels.push_back(
        {BinaryTreeKernel::Params{
             .numNodes = 63, .keyPeriod = 4, .randomKeyProb = 0.05},
         1.0, 1});
    spec.kernels.push_back(
        {StrideArrayKernel::Params{
             .numArrays = 1, .numElems = 1024, .chunk = 64},
         1.0, 1});
    spec.kernels.push_back(
        {GlobalScalarKernel::Params{.numGlobals = 8}, 1.0, 1});

    const Trace trace = generateTrace(spec, 200000);
    std::printf("generated %zu instructions\n\n", trace.size());

    Table table;
    table.row({"predictor", "pred_rate", "accuracy", "speedup"});

    auto evaluate = [&](const char *name,
                        std::unique_ptr<AddressPredictor> func_pred,
                        std::unique_ptr<AddressPredictor> time_pred) {
        const PredictionStats stats =
            runPredictorSim(trace, *func_pred);
        const TimingConfig timing_config;
        const auto base = runTimingSim(trace, timing_config, nullptr);
        const auto with =
            runTimingSim(trace, timing_config, time_pred.get());
        table.newRow();
        table.cell(std::string(name));
        table.percent(stats.predictionRate());
        table.percent(stats.accuracy());
        table.cell(static_cast<double>(base.cycles) /
                       static_cast<double>(with.cycles),
                   3);
    };

    evaluate("last-address",
             std::make_unique<LastAddressPredictor>(LastAddressConfig{}),
             std::make_unique<LastAddressPredictor>(LastAddressConfig{}));
    evaluate("enhanced stride",
             std::make_unique<StridePredictor>(StridePredictorConfig{}),
             std::make_unique<StridePredictor>(StridePredictorConfig{}));
    evaluate("CAP",
             std::make_unique<CapPredictor>(CapPredictorConfig{}),
             std::make_unique<CapPredictor>(CapPredictorConfig{}));
    evaluate("hybrid CAP/stride",
             std::make_unique<HybridPredictor>(HybridConfig{}),
             std::make_unique<HybridPredictor>(HybridConfig{}));

    table.print(std::cout);
    std::printf("\nThe hybrid covers both the array (stride) and the "
                "pointer chains (CAP).\n");
    return 0;
}
