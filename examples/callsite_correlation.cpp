/**
 * @file
 * Control correlation (paper section 2.2): a callee whose loads
 * depend on the call site, called in a recurring site pattern like
 * xlmatch's a-c-u-a. The example prints the load's address
 * "fingerprint" (as the paper does) and then shows that the stride
 * predictor cannot learn it while the CAP predictor becomes perfect.
 *
 * Build & run:  ./build/examples/callsite_correlation
 */

#include <cstdio>
#include <map>

#include "core/cap_predictor.hh"
#include "core/stride_predictor.hh"
#include "sim/predictor_sim.hh"
#include "workloads/control_kernels.hh"

int
main()
{
    using namespace clap;

    Rng rng(7);
    SimHeap heap(rng);
    SimStack stack;
    Trace trace("callsite");

    KernelContext ctx;
    ctx.rng = &rng;
    ctx.heap = &heap;
    ctx.stack = &stack;
    ctx.sink = &trace;
    ctx.codeBase = 0x08050000;

    CallSiteKernel kernel({.numSites = 3,
                           .seqLen = 5,
                           .calleeLoads = 2,
                           .noiseProb = 0.0});
    kernel.init(ctx);
    for (int i = 0; i < 4000; ++i)
        kernel.step();

    // Print the fingerprint of the first callee load: its address
    // sequence over the first 20 invocations, labelled A/B/C per
    // distinct address (the paper's "A1 A1 C U A2 A2" notation).
    const std::uint64_t callee_load_pc = 0x08050000 + 4 * 16;
    std::map<std::uint64_t, char> labels;
    std::printf("call-site pattern: ");
    for (unsigned site : kernel.siteSequence())
        std::printf("%c ", static_cast<char>('a' + site));
    std::printf("\nfingerprint of the callee's first load:\n  ");
    unsigned shown = 0;
    for (const auto &rec : trace.records()) {
        if (!rec.isLoad() || rec.pc != callee_load_pc)
            continue;
        if (!labels.count(rec.effAddr)) {
            labels[rec.effAddr] =
                static_cast<char>('A' + labels.size());
        }
        std::printf("%c ", labels[rec.effAddr]);
        if (++shown == 20)
            break;
    }
    std::printf("\n\n");

    // Evaluate both predictors on the whole trace.
    StridePredictor stride{StridePredictorConfig{}};
    const auto stride_stats = runPredictorSim(trace, stride);
    CapPredictor cap{CapPredictorConfig{}};
    const auto cap_stats = runPredictorSim(trace, cap);

    std::printf("enhanced stride: %5.1f%% of loads speculated, "
                "%.1f%% accuracy\n",
                100.0 * stride_stats.predictionRate(),
                100.0 * stride_stats.accuracy());
    std::printf("CAP            : %5.1f%% of loads speculated, "
                "%.1f%% accuracy\n",
                100.0 * cap_stats.predictionRate(),
                100.0 * cap_stats.accuracy());
    std::printf("\nThe per-site argument blocks give each static load "
                "a periodic, non-stride\naddress sequence: context "
                "history captures it, deltas cannot.\n");
    return 0;
}
