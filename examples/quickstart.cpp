/**
 * @file
 * Quickstart: predict the addresses of a pointer-chasing load with
 * the hybrid CAP/stride predictor.
 *
 * This shows the minimal public API:
 *   1. configure and build a predictor,
 *   2. call predict() with what the front end knows (PC, immediate
 *      offset, branch history),
 *   3. call update() once the real effective address is known.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <vector>

#include "core/hybrid_predictor.hh"

int
main()
{
    using namespace clap;

    // The paper's baseline configuration: 4K-entry 2-way load buffer,
    // 4K-entry link table with 8-bit tags, PF bits, base addresses.
    HybridPredictor predictor{HybridConfig{}};

    // A linked list laid out non-contiguously on the heap (figure 1
    // of the paper): stride predictors cannot learn this sequence,
    // the context-based component can.
    const std::vector<std::uint64_t> nodes = {
        0x10010, 0x10080, 0x10040, 0x10020, 0x100c0, 0x10060};

    LoadInfo next_field;
    next_field.pc = 0x08048010; // the static `p = p->next` load
    next_field.immOffset = 8;   // offsetof(Node, next)

    std::uint64_t predicted = 0;
    std::uint64_t correct = 0;
    const unsigned traversals = 10;
    for (unsigned t = 0; t < traversals; ++t) {
        for (const std::uint64_t node : nodes) {
            const std::uint64_t actual = node + 8;

            const Prediction pred = predictor.predict(next_field);
            if (pred.speculate) {
                ++predicted;
                if (pred.addr == actual)
                    ++correct;
            }
            predictor.update(next_field, actual, pred);
        }
    }

    std::printf("loads: %u\n", traversals * 6);
    std::printf("speculative accesses: %lu (%.0f%% of loads)\n",
                predicted, 100.0 * predicted / (traversals * 6));
    std::printf("correct: %lu (%.1f%% accuracy)\n", correct,
                predicted ? 100.0 * correct / predicted : 0.0);
    std::printf("\nAfter a couple of warmup traversals the context-"
                "based component predicts\nevery node of the chain -- "
                "a pattern no stride predictor can capture.\n");
    return 0;
}
