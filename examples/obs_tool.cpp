/**
 * @file
 * Observability tooling: run a predictor over a catalog trace and
 * print its internal-state telemetry (core/telemetry.hh), or validate
 * a trace-event span file emitted by the obs layer. Demonstrates the
 * introspection API and doubles as the CI smoke-check utility:
 *
 *   obs_tool                                  # usage + trace list
 *   obs_tool stats INT_go                     # hybrid telemetry
 *   obs_tool stats INT_go --predictor=cap     # cap | stride | hybrid | last
 *   obs_tool stats INT_go --insts=500000      # custom trace length
 *   obs_tool stats INT_go --json              # machine-readable dump
 *   obs_tool stats INT_go --metrics           # + global metrics registry
 *   obs_tool check-spans FILE                 # validate trace-event JSON
 *
 * The --json output is a pure function of (trace, predictor, insts):
 * it contains the PredictionStats counters and the telemetry snapshot
 * but never the (enablement-dependent) metrics registry, so CI can
 * diff a CLAP_METRICS=0 run against a CLAP_METRICS=1 run byte for
 * byte to prove instrumentation changes no simulation result.
 *
 * Exit codes (scriptable):
 *   0  success
 *   1  usage error / unknown trace or predictor name
 *   3  cannot open the span file
 *   4  span file is not valid trace-event JSON
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/cap_predictor.hh"
#include "core/hybrid_predictor.hh"
#include "core/last_address_predictor.hh"
#include "core/stride_predictor.hh"
#include "core/telemetry.hh"
#include "obs/metrics.hh"
#include "sim/predictor_sim.hh"
#include "util/json.hh"
#include "workloads/composer.hh"
#include "workloads/suites.hh"

namespace
{

enum ExitCode
{
    exitOk = 0,
    exitUsage = 1,
    exitOpenFailure = 3,
    exitInvalid = 4,
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s stats <trace-name> [--predictor=NAME] [--insts=N] "
        "[--json] [--metrics]\n"
        "       %s check-spans <file>\n\n"
        "predictors: hybrid (default), cap, stride, last\n"
        "traces: run `trace_tool` without arguments for the catalog\n",
        argv0, argv0);
}

std::unique_ptr<clap::AddressPredictor>
makePredictor(const std::string &name)
{
    using namespace clap;
    if (name == "hybrid")
        return std::make_unique<HybridPredictor>(HybridConfig{});
    if (name == "cap")
        return std::make_unique<CapPredictor>(CapPredictorConfig{});
    if (name == "stride")
        return std::make_unique<StridePredictor>(
            StridePredictorConfig{});
    if (name == "last")
        return std::make_unique<LastAddressPredictor>(
            LastAddressConfig{});
    return nullptr;
}

/** Deterministic PredictionStats rendering for the --json dump. */
std::string
statsJson(const clap::PredictionStats &stats)
{
    std::string json = "{\"loads\": " + std::to_string(stats.loads);
    json += ", \"lb_hits\": " + std::to_string(stats.lbHits);
    json += ", \"formed\": " + std::to_string(stats.formed);
    json += ", \"formed_correct\": " +
        std::to_string(stats.formedCorrect);
    json += ", \"spec\": " + std::to_string(stats.spec);
    json += ", \"spec_correct\": " + std::to_string(stats.specCorrect);
    json += ", \"both_spec\": " + std::to_string(stats.bothSpec);
    json += ", \"miss_selections\": " +
        std::to_string(stats.missSelections);
    json += "}";
    return json;
}

int
runStats(int argc, char **argv)
{
    using namespace clap;

    std::string traceName;
    std::string predictorName = "hybrid";
    std::size_t insts = defaultTraceLength();
    bool asJson = false;
    bool withMetrics = false;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--predictor=", 0) == 0) {
            predictorName = arg.substr(12);
        } else if (arg.rfind("--insts=", 0) == 0) {
            insts = static_cast<std::size_t>(
                std::atol(arg.c_str() + 8));
            if (insts == 0) {
                std::fprintf(stderr, "obs_tool: bad --insts value\n");
                return exitUsage;
            }
        } else if (arg == "--json") {
            asJson = true;
        } else if (arg == "--metrics") {
            withMetrics = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "obs_tool: unknown flag '%s'\n",
                         arg.c_str());
            return exitUsage;
        } else if (traceName.empty()) {
            traceName = arg;
        } else {
            std::fprintf(stderr, "obs_tool: extra argument '%s'\n",
                         arg.c_str());
            return exitUsage;
        }
    }
    if (traceName.empty()) {
        usage(argv[0]);
        return exitUsage;
    }

    TraceSpec spec;
    bool found = false;
    for (const auto &candidate : buildCatalog()) {
        if (candidate.name == traceName) {
            spec = candidate;
            found = true;
        }
    }
    if (!found) {
        std::fprintf(stderr,
                     "obs_tool: unknown trace '%s' (see trace_tool)\n",
                     traceName.c_str());
        return exitUsage;
    }

    auto predictor = makePredictor(predictorName);
    if (predictor == nullptr) {
        std::fprintf(stderr, "obs_tool: unknown predictor '%s'\n",
                     predictorName.c_str());
        return exitUsage;
    }

    const Trace trace = generateTrace(spec, insts);
    const PredictionStats stats =
        runPredictorSim(trace, *predictor, PredictorSimConfig{});
    const PredictorTelemetry telemetry =
        predictor->snapshotTelemetry();

    if (asJson) {
        // One deterministic document; see the file header on why the
        // metrics registry is deliberately excluded here.
        std::string json = "{\n\"trace\": \"" + jsonEscape(traceName) +
            "\",\n\"stats\": " + statsJson(stats) +
            ",\n\"telemetry\": " + telemetryJson(telemetry) + "}\n";
        std::fputs(json.c_str(), stdout);
    } else {
        std::printf("trace %s (%zu records), predictor %s\n",
                    traceName.c_str(), trace.size(),
                    predictor->name().c_str());
        std::printf(
            "loads %llu, prediction rate %.2f%%, accuracy %.2f%%\n\n",
            static_cast<unsigned long long>(stats.loads),
            100.0 * stats.predictionRate(), 100.0 * stats.accuracy());
        std::fputs(telemetryText(telemetry).c_str(), stdout);
    }
    if (withMetrics) {
        std::printf("\n-- metrics registry (%s) --\n%s",
                    obs::metricsEnabled() ? "enabled" : "disabled",
                    obs::metricsText().c_str());
    }
    return exitOk;
}

/**
 * Validate a Chrome/Perfetto trace-event file: top-level object with
 * a traceEvents array whose elements carry a string name/ph, numeric
 * ts, pid and tid, and a dur on every complete ('X') event.
 */
int
checkSpans(const std::string &path)
{
    using namespace clap;

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "obs_tool: cannot open %s\n",
                     path.c_str());
        return exitOpenFailure;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    const auto parsed = parseJson(text);
    if (!parsed) {
        std::fprintf(stderr, "obs_tool: %s: %s\n", path.c_str(),
                     parsed.error().str().c_str());
        return exitInvalid;
    }
    const JsonValue &root = *parsed;
    const JsonValue *events = root.find("traceEvents");
    if (root.kind != JsonValue::Kind::Object || events == nullptr ||
        events->kind != JsonValue::Kind::Array) {
        std::fprintf(stderr,
                     "obs_tool: %s: missing traceEvents array\n",
                     path.c_str());
        return exitInvalid;
    }

    std::size_t complete = 0;
    std::size_t instants = 0;
    std::size_t metadata = 0;
    for (std::size_t i = 0; i < events->items.size(); ++i) {
        const JsonValue &event = events->items[i];
        auto bad = [&](const char *what) {
            std::fprintf(stderr, "obs_tool: %s: event %zu: %s\n",
                         path.c_str(), i, what);
            return exitInvalid;
        };
        if (event.kind != JsonValue::Kind::Object)
            return bad("not an object");
        const JsonValue *name = event.find("name");
        const JsonValue *ph = event.find("ph");
        if (name == nullptr || name->kind != JsonValue::Kind::String)
            return bad("missing string name");
        if (ph == nullptr || ph->kind != JsonValue::Kind::String ||
            ph->str.size() != 1)
            return bad("missing one-char ph");
        const JsonValue *ts = event.find("ts");
        const JsonValue *pid = event.find("pid");
        const JsonValue *tid = event.find("tid");
        if (ts == nullptr || ts->kind != JsonValue::Kind::Number)
            return bad("missing numeric ts");
        if (pid == nullptr || pid->kind != JsonValue::Kind::Number)
            return bad("missing numeric pid");
        if (tid == nullptr || tid->kind != JsonValue::Kind::Number)
            return bad("missing numeric tid");
        switch (ph->str[0]) {
          case 'X': {
            const JsonValue *dur = event.find("dur");
            if (dur == nullptr ||
                dur->kind != JsonValue::Kind::Number)
                return bad("complete event without numeric dur");
            ++complete;
            break;
          }
          case 'i':
            ++instants;
            break;
          case 'M':
            ++metadata;
            break;
          default:
            return bad("unexpected ph");
        }
    }

    std::printf("%s: valid trace-event JSON: %zu complete spans, "
                "%zu instants, %zu metadata events\n",
                path.c_str(), complete, instants, metadata);
    return exitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::string(argv[1]) == "stats")
        return runStats(argc, argv);
    if (argc >= 3 && std::string(argv[1]) == "check-spans")
        return checkSpans(argv[2]);
    usage(argv[0]);
    return argc < 2 ? exitOk : exitUsage;
}
