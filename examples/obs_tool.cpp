/**
 * @file
 * Observability tooling: run a predictor over a catalog trace and
 * print its internal-state telemetry (core/telemetry.hh), or validate
 * a trace-event span file emitted by the obs layer. Demonstrates the
 * introspection API and doubles as the CI smoke-check utility:
 *
 *   obs_tool                                  # usage + trace list
 *   obs_tool stats INT_go                     # hybrid telemetry
 *   obs_tool stats INT_go --predictor=cap     # cap | stride | hybrid | last
 *   obs_tool stats INT_go --insts=500000      # custom trace length
 *   obs_tool stats INT_go --json              # machine-readable dump
 *   obs_tool stats INT_go --metrics           # + global metrics registry
 *   obs_tool check-spans FILE                 # validate trace-event JSON
 *   obs_tool check-spans FILE --min-trace-procs=3
 *                                             # + require one distributed
 *                                             #   trace spanning >= 3 procs
 *   obs_tool scrape ENDPOINT [--stable]       # live ObsFetch scrape
 *   obs_tool load ENDPOINT --loads=N --seed=S --sample-every=K
 *                                             # deterministic traced load
 *   obs_tool merge OUT IN [IN ...]            # align span files from
 *                                             #   several processes onto
 *                                             #   one Perfetto timeline
 *
 * The --json output is a pure function of (trace, predictor, insts):
 * it contains the PredictionStats counters and the telemetry snapshot
 * but never the (enablement-dependent) metrics registry, so CI can
 * diff a CLAP_METRICS=0 run against a CLAP_METRICS=1 run byte for
 * byte to prove instrumentation changes no simulation result. The
 * scrape analogue is --stable: the server omits wall-clock ("timing")
 * sections, so two same-seed runs scrape byte-identically.
 *
 * merge aligns per-process span files using the clock_epoch_unix_ns
 * each file's process_name metadata carries (the wall-clock anchor of
 * that process's span-timestamp zero): every event's ts is shifted by
 * (epoch - min epoch), putting all processes on the earliest one's
 * clock. The output is one valid trace-event file; open it in
 * Perfetto and filter by trace_id to follow one request across clapr,
 * clapd, and the shard worker.
 *
 * Exit codes (scriptable):
 *   0  success
 *   1  usage error / unknown trace or predictor name
 *   2  endpoint unreachable (scrape/load)
 *   3  cannot open the span file
 *   4  span file is not valid trace-event JSON (or fails the
 *      distributed-trace checks)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/cap_predictor.hh"
#include "core/hybrid_predictor.hh"
#include "core/last_address_predictor.hh"
#include "core/stride_predictor.hh"
#include "core/telemetry.hh"
#include "net/client.hh"
#include "obs/metrics.hh"
#include "obs/trace_context.hh"
#include "obs/trace_events.hh"
#include "sim/predictor_sim.hh"
#include "util/atomic_file.hh"
#include "util/json.hh"
#include "workloads/composer.hh"
#include "workloads/suites.hh"

namespace
{

enum ExitCode
{
    exitOk = 0,
    exitUsage = 1,
    exitUnreachable = 2,
    exitOpenFailure = 3,
    exitInvalid = 4,
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s stats <trace-name> [--predictor=NAME] [--insts=N] "
        "[--json] [--metrics]\n"
        "       %s check-spans <file> [--min-trace-procs=N]\n"
        "       %s scrape <endpoint> [--stable]\n"
        "       %s load <endpoint> [--loads=N] [--seed=S] "
        "[--sample-every=K]\n"
        "       %s merge <out> <in> [<in> ...]\n\n"
        "predictors: hybrid (default), cap, stride, last\n"
        "traces: run `trace_tool` without arguments for the catalog\n"
        "endpoints: unix:/tmp/clapd.sock or tcp:127.0.0.1:PORT\n",
        argv0, argv0, argv0, argv0, argv0);
}

std::unique_ptr<clap::AddressPredictor>
makePredictor(const std::string &name)
{
    using namespace clap;
    if (name == "hybrid")
        return std::make_unique<HybridPredictor>(HybridConfig{});
    if (name == "cap")
        return std::make_unique<CapPredictor>(CapPredictorConfig{});
    if (name == "stride")
        return std::make_unique<StridePredictor>(
            StridePredictorConfig{});
    if (name == "last")
        return std::make_unique<LastAddressPredictor>(
            LastAddressConfig{});
    return nullptr;
}

/** Deterministic PredictionStats rendering for the --json dump. */
std::string
statsJson(const clap::PredictionStats &stats)
{
    std::string json = "{\"loads\": " + std::to_string(stats.loads);
    json += ", \"lb_hits\": " + std::to_string(stats.lbHits);
    json += ", \"formed\": " + std::to_string(stats.formed);
    json += ", \"formed_correct\": " +
        std::to_string(stats.formedCorrect);
    json += ", \"spec\": " + std::to_string(stats.spec);
    json += ", \"spec_correct\": " + std::to_string(stats.specCorrect);
    json += ", \"both_spec\": " + std::to_string(stats.bothSpec);
    json += ", \"miss_selections\": " +
        std::to_string(stats.missSelections);
    json += "}";
    return json;
}

int
runStats(int argc, char **argv)
{
    using namespace clap;

    std::string traceName;
    std::string predictorName = "hybrid";
    std::size_t insts = defaultTraceLength();
    bool asJson = false;
    bool withMetrics = false;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--predictor=", 0) == 0) {
            predictorName = arg.substr(12);
        } else if (arg.rfind("--insts=", 0) == 0) {
            insts = static_cast<std::size_t>(
                std::atol(arg.c_str() + 8));
            if (insts == 0) {
                std::fprintf(stderr, "obs_tool: bad --insts value\n");
                return exitUsage;
            }
        } else if (arg == "--json") {
            asJson = true;
        } else if (arg == "--metrics") {
            withMetrics = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "obs_tool: unknown flag '%s'\n",
                         arg.c_str());
            return exitUsage;
        } else if (traceName.empty()) {
            traceName = arg;
        } else {
            std::fprintf(stderr, "obs_tool: extra argument '%s'\n",
                         arg.c_str());
            return exitUsage;
        }
    }
    if (traceName.empty()) {
        usage(argv[0]);
        return exitUsage;
    }

    TraceSpec spec;
    bool found = false;
    for (const auto &candidate : buildCatalog()) {
        if (candidate.name == traceName) {
            spec = candidate;
            found = true;
        }
    }
    if (!found) {
        std::fprintf(stderr,
                     "obs_tool: unknown trace '%s' (see trace_tool)\n",
                     traceName.c_str());
        return exitUsage;
    }

    auto predictor = makePredictor(predictorName);
    if (predictor == nullptr) {
        std::fprintf(stderr, "obs_tool: unknown predictor '%s'\n",
                     predictorName.c_str());
        return exitUsage;
    }

    const Trace trace = generateTrace(spec, insts);
    const PredictionStats stats =
        runPredictorSim(trace, *predictor, PredictorSimConfig{});
    const PredictorTelemetry telemetry =
        predictor->snapshotTelemetry();

    if (asJson) {
        // One deterministic document; see the file header on why the
        // metrics registry is deliberately excluded here.
        std::string json = "{\n\"trace\": \"" + jsonEscape(traceName) +
            "\",\n\"stats\": " + statsJson(stats) +
            ",\n\"telemetry\": " + telemetryJson(telemetry) + "}\n";
        std::fputs(json.c_str(), stdout);
    } else {
        std::printf("trace %s (%zu records), predictor %s\n",
                    traceName.c_str(), trace.size(),
                    predictor->name().c_str());
        std::printf(
            "loads %llu, prediction rate %.2f%%, accuracy %.2f%%\n\n",
            static_cast<unsigned long long>(stats.loads),
            100.0 * stats.predictionRate(), 100.0 * stats.accuracy());
        std::fputs(telemetryText(telemetry).c_str(), stdout);
    }
    if (withMetrics) {
        std::printf("\n-- metrics registry (%s) --\n%s",
                    obs::metricsEnabled() ? "enabled" : "disabled",
                    obs::metricsText().c_str());
    }
    return exitOk;
}

/**
 * Fetch one live scrape (ObsFetch/ObsOk) from a running clapd/clapr
 * and print it. --stable asks the server to omit wall-clock sections,
 * making the document byte-identical across two same-seed runs.
 */
int
runScrape(int argc, char **argv)
{
    using namespace clap;

    std::string endpoint;
    bool stable = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--stable") {
            stable = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "obs_tool: unknown flag '%s'\n",
                         arg.c_str());
            return exitUsage;
        } else if (endpoint.empty()) {
            endpoint = arg;
        } else {
            std::fprintf(stderr, "obs_tool: extra argument '%s'\n",
                         arg.c_str());
            return exitUsage;
        }
    }
    if (endpoint.empty()) {
        usage(argv[0]);
        return exitUsage;
    }

    net::ClientConfig config;
    config.endpoint = endpoint;
    config.clientName = "obs-scrape";
    if (auto valid = config.validate(); !valid) {
        std::fprintf(stderr, "obs_tool: %s\n",
                     valid.error().str().c_str());
        return exitUsage;
    }
    net::NetClient client(config);
    auto doc = client.fetchObs(/*include_timing=*/!stable);
    if (!doc) {
        std::fprintf(stderr, "obs_tool: scrape %s: %s\n",
                     endpoint.c_str(), doc.error().str().c_str());
        return exitUnreachable;
    }
    std::fputs(doc->c_str(), stdout);
    return exitOk;
}

/**
 * Deterministic traced load: predict+train round trips against a live
 * endpoint, opening a sampled root span every --sample-every-th
 * request (trace id seeded from --seed, so two same-seed runs emit
 * the same trace ids). With CLAP_TRACE_EVENTS set, the resulting span
 * file joins the server-side ones in `obs_tool merge`.
 */
int
runLoad(int argc, char **argv)
{
    using namespace clap;

    std::string endpoint;
    std::uint64_t loads = 64;
    std::uint64_t seed = 1;
    std::uint64_t sampleEvery = 8;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--loads=", 0) == 0) {
            loads = std::strtoull(arg.c_str() + 8, nullptr, 0);
        } else if (arg.rfind("--seed=", 0) == 0) {
            seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
        } else if (arg.rfind("--sample-every=", 0) == 0) {
            sampleEvery = std::strtoull(arg.c_str() + 15, nullptr, 0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "obs_tool: unknown flag '%s'\n",
                         arg.c_str());
            return exitUsage;
        } else if (endpoint.empty()) {
            endpoint = arg;
        } else {
            std::fprintf(stderr, "obs_tool: extra argument '%s'\n",
                         arg.c_str());
            return exitUsage;
        }
    }
    if (endpoint.empty() || loads == 0) {
        usage(argv[0]);
        return exitUsage;
    }

    obs::setTraceProcessName("obs_load");

    net::ClientConfig config;
    config.endpoint = endpoint;
    config.clientName = "obs-load";
    if (auto valid = config.validate(); !valid) {
        std::fprintf(stderr, "obs_tool: %s\n",
                     valid.error().str().c_str());
        return exitUsage;
    }
    net::NetClient client(config);

    std::uint64_t predictsOk = 0;
    std::uint64_t trainsOk = 0;
    std::uint64_t errors = 0;
    std::uint64_t sampled = 0;
    for (std::uint64_t i = 0; i < loads; ++i) {
        // A small deterministic pointer-chase-ish schedule: 32 pcs,
        // strided addresses, so the servers' predictors see real
        // training signal and the gates fire.
        const std::uint64_t pc = 0x400000 + (i % 32) * 4;
        const std::uint64_t addr = 0x10000000 + i * 64;

        // The root of a distributed trace: a context with no parent
        // span. Every span below it — the client-side load span, the
        // gateway's net.Predict, the replica's serve.predict — chains
        // off this trace id.
        std::optional<obs::TraceScope> root;
        std::optional<obs::Span> span;
        if (sampleEvery != 0 && i % sampleEvery == 0) {
            obs::TraceContext ctx;
            ctx.traceId = obs::traceIdFromSeed(seed ^ (i + 1));
            ctx.spanId = 0;
            ctx.sampled = true;
            root.emplace(ctx);
            span.emplace("load.predict", "load");
            ++sampled;
        }

        const LoadInfo info = client.makeInfo(pc, 0);
        if (auto pred = client.predict(info)) {
            ++predictsOk;
            if (client.train(info, addr, *pred))
                ++trainsOk;
            else
                ++errors;
        } else {
            ++errors;
        }
        span.reset();
        root.reset();
    }

    if (auto flushed = obs::flushTraceEvents(); !flushed) {
        std::fprintf(stderr, "obs_tool: span flush: %s\n",
                     flushed.error().str().c_str());
    }
    std::printf("obs_tool load: %llu predict(s) ok, %llu train(s) ok, "
                "%llu error(s), %llu sampled root span(s)\n",
                static_cast<unsigned long long>(predictsOk),
                static_cast<unsigned long long>(trainsOk),
                static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(sampled));
    return errors == 0 ? exitOk : exitUnreachable;
}

/** Re-render one parsed JSON value (for merge: events are rewritten
 *  after their timestamps shift). Unsigned integers render as
 *  integers, every other number with the same %.3f the span writer
 *  uses, so a round trip through merge keeps the writer's shape. */
void
renderJson(const clap::JsonValue &value, std::string &out)
{
    using clap::JsonValue;
    switch (value.kind) {
      case JsonValue::Kind::Null:
        out += "null";
        break;
      case JsonValue::Kind::Bool:
        out += value.boolean ? "true" : "false";
        break;
      case JsonValue::Kind::Number:
        if (value.isUint) {
            out += std::to_string(value.uintValue);
        } else {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.3f", value.number);
            out += buf;
        }
        break;
      case JsonValue::Kind::String:
        out += "\"" + clap::jsonEscape(value.str) + "\"";
        break;
      case JsonValue::Kind::Array: {
        out += "[";
        bool first = true;
        for (const JsonValue &item : value.items) {
            if (!first)
                out += ", ";
            first = false;
            renderJson(item, out);
        }
        out += "]";
        break;
      }
      case JsonValue::Kind::Object: {
        out += "{";
        bool first = true;
        for (const auto &[key, member] : value.members) {
            if (!first)
                out += ", ";
            first = false;
            out += "\"" + clap::jsonEscape(key) + "\": ";
            renderJson(member, out);
        }
        out += "}";
        break;
      }
    }
}

/**
 * Merge span files from several processes onto one timeline. Each
 * file's process_name metadata carries clock_epoch_unix_ns — the
 * wall-clock instant of that process's span-timestamp zero (captured
 * at handshake-compatible Sink construction) — so shifting every
 * event by (epoch - min epoch) expresses all timestamps on the
 * earliest process's clock.
 */
int
runMerge(int argc, char **argv)
{
    using namespace clap;

    if (argc < 4) {
        usage(argv[0]);
        return exitUsage;
    }
    const std::string outPath = argv[2];

    struct MergedEvent
    {
        bool metadata = false;
        double ts = 0.0;
        std::size_t order = 0; ///< global input order (stable ties)
        std::string json;
    };
    std::vector<MergedEvent> events;

    // First pass: parse every input and find the earliest epoch.
    std::vector<JsonValue> roots;
    std::vector<std::uint64_t> epochs;
    std::uint64_t minEpoch = 0;
    bool haveEpoch = false;
    for (int i = 3; i < argc; ++i) {
        std::ifstream in(argv[i], std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "obs_tool: cannot open %s\n",
                         argv[i]);
            return exitOpenFailure;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        auto parsed = parseJson(buffer.str());
        if (!parsed) {
            std::fprintf(stderr, "obs_tool: %s: %s\n", argv[i],
                         parsed.error().str().c_str());
            return exitInvalid;
        }
        const JsonValue *list = parsed->find("traceEvents");
        if (list == nullptr ||
            list->kind != JsonValue::Kind::Array) {
            std::fprintf(stderr,
                         "obs_tool: %s: missing traceEvents array\n",
                         argv[i]);
            return exitInvalid;
        }
        std::uint64_t epoch = 0;
        for (const JsonValue &event : list->items) {
            if (event.stringOr("ph", "") == "M" &&
                event.stringOr("name", "") == "process_name") {
                if (const JsonValue *args = event.find("args"))
                    epoch = args->uintOr("clock_epoch_unix_ns", 0);
                break;
            }
        }
        if (epoch != 0) {
            minEpoch = haveEpoch ? std::min(minEpoch, epoch) : epoch;
            haveEpoch = true;
        }
        epochs.push_back(epoch);
        roots.push_back(std::move(*parsed));
    }

    // Second pass: shift and re-render.
    std::size_t order = 0;
    for (std::size_t f = 0; f < roots.size(); ++f) {
        const double offsetUs =
            epochs[f] != 0 && haveEpoch
                ? static_cast<double>(epochs[f] - minEpoch) / 1000.0
                : 0.0;
        JsonValue *list = const_cast<JsonValue *>(
            roots[f].find("traceEvents"));
        for (JsonValue &event : list->items) {
            MergedEvent merged;
            merged.order = order++;
            merged.metadata = event.stringOr("ph", "") == "M";
            if (!merged.metadata) {
                for (auto &[key, member] : event.members) {
                    if (key == "ts" &&
                        member.kind == JsonValue::Kind::Number) {
                        member.number = member.isUint
                            ? static_cast<double>(member.uintValue)
                            : member.number;
                        member.number += offsetUs;
                        member.isUint = false;
                        merged.ts = member.number;
                    }
                }
            }
            renderJson(event, merged.json);
            events.push_back(std::move(merged));
        }
    }

    // Metadata events first (process names ahead of their spans),
    // then one global time order; input order breaks ties.
    std::stable_sort(events.begin(), events.end(),
                     [](const MergedEvent &a, const MergedEvent &b) {
                         if (a.metadata != b.metadata)
                             return a.metadata;
                         if (a.metadata)
                             return a.order < b.order;
                         return a.ts < b.ts;
                     });

    std::string json;
    json.reserve(events.size() * 96 + 64);
    json += "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (i != 0)
            json += ",\n";
        json += events[i].json;
    }
    json += "\n]}\n";
    if (auto written = writeFileAtomic(outPath, json); !written) {
        std::fprintf(stderr, "obs_tool: %s: %s\n", outPath.c_str(),
                     written.error().str().c_str());
        return exitOpenFailure;
    }
    std::printf("obs_tool merge: %zu event(s) from %d file(s) -> %s\n",
                events.size(), argc - 3, outPath.c_str());
    return exitOk;
}

/**
 * Validate a Chrome/Perfetto trace-event file: top-level object with
 * a traceEvents array whose elements carry a string name/ph, numeric
 * ts, pid and tid, and a dur on every complete ('X') event. With
 * --min-trace-procs=N, additionally require at least one distributed
 * trace (events sharing args.trace_id) spanning >= N distinct
 * processes, and check parent/child span linkage: a child whose
 * parent span lives in the same process must fit inside it in time.
 */
int
checkSpans(const std::string &path, unsigned min_trace_procs)
{
    using namespace clap;

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "obs_tool: cannot open %s\n",
                     path.c_str());
        return exitOpenFailure;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    const auto parsed = parseJson(text);
    if (!parsed) {
        std::fprintf(stderr, "obs_tool: %s: %s\n", path.c_str(),
                     parsed.error().str().c_str());
        return exitInvalid;
    }
    const JsonValue &root = *parsed;
    const JsonValue *events = root.find("traceEvents");
    if (root.kind != JsonValue::Kind::Object || events == nullptr ||
        events->kind != JsonValue::Kind::Array) {
        std::fprintf(stderr,
                     "obs_tool: %s: missing traceEvents array\n",
                     path.c_str());
        return exitInvalid;
    }

    std::size_t complete = 0;
    std::size_t instants = 0;
    std::size_t metadata = 0;
    for (std::size_t i = 0; i < events->items.size(); ++i) {
        const JsonValue &event = events->items[i];
        auto bad = [&](const char *what) {
            std::fprintf(stderr, "obs_tool: %s: event %zu: %s\n",
                         path.c_str(), i, what);
            return exitInvalid;
        };
        if (event.kind != JsonValue::Kind::Object)
            return bad("not an object");
        const JsonValue *name = event.find("name");
        const JsonValue *ph = event.find("ph");
        if (name == nullptr || name->kind != JsonValue::Kind::String)
            return bad("missing string name");
        if (ph == nullptr || ph->kind != JsonValue::Kind::String ||
            ph->str.size() != 1)
            return bad("missing one-char ph");
        const JsonValue *ts = event.find("ts");
        const JsonValue *pid = event.find("pid");
        const JsonValue *tid = event.find("tid");
        if (ts == nullptr || ts->kind != JsonValue::Kind::Number)
            return bad("missing numeric ts");
        if (pid == nullptr || pid->kind != JsonValue::Kind::Number)
            return bad("missing numeric pid");
        if (tid == nullptr || tid->kind != JsonValue::Kind::Number)
            return bad("missing numeric tid");
        switch (ph->str[0]) {
          case 'X': {
            const JsonValue *dur = event.find("dur");
            if (dur == nullptr ||
                dur->kind != JsonValue::Kind::Number)
                return bad("complete event without numeric dur");
            ++complete;
            break;
          }
          case 'i':
            ++instants;
            break;
          case 'M':
            ++metadata;
            break;
          default:
            return bad("unexpected ph");
        }
    }

    // Distributed-trace linkage: group complete spans by trace id,
    // index them by span id, and walk the parent chains.
    struct TracedSpan
    {
        double ts = 0.0;
        double dur = 0.0;
        std::uint64_t pid = 0;
        std::string spanId;
        std::string parentId;
    };
    std::map<std::string, std::vector<TracedSpan>> byTrace;
    for (const JsonValue &event : events->items) {
        if (event.stringOr("ph", "") != "X")
            continue;
        const JsonValue *args = event.find("args");
        if (args == nullptr)
            continue;
        const std::string traceId = args->stringOr("trace_id", "");
        if (traceId.empty())
            continue;
        TracedSpan span;
        if (const JsonValue *ts = event.find("ts"))
            span.ts = ts->number;
        if (const JsonValue *dur = event.find("dur"))
            span.dur = dur->number;
        span.pid = event.uintOr("pid", 0);
        span.spanId = args->stringOr("span_id", "");
        span.parentId = args->stringOr("parent_span_id", "");
        byTrace[traceId].push_back(std::move(span));
    }

    std::size_t maxProcs = 0;
    std::string widestTrace;
    for (const auto &[traceId, spans] : byTrace) {
        std::set<std::uint64_t> pids;
        std::map<std::string, const TracedSpan *> bySpanId;
        for (const TracedSpan &span : spans) {
            pids.insert(span.pid);
            bySpanId.emplace(span.spanId, &span);
        }
        if (pids.size() > maxProcs) {
            maxProcs = pids.size();
            widestTrace = traceId;
        }
        for (const TracedSpan &span : spans) {
            if (span.parentId.empty() || span.parentId == "0x0")
                continue; // root span of its process
            const auto parent = bySpanId.find(span.parentId);
            if (parent == bySpanId.end())
                continue; // parent flushed elsewhere (another file)
            // Same-process parents must contain the child in time.
            // Cross-process pairs are exempt: their clocks align only
            // after `merge`, and even then only to epoch precision.
            if (parent->second->pid != span.pid)
                continue;
            constexpr double slackUs = 0.002; // %.3f rounding
            if (span.ts + slackUs < parent->second->ts ||
                span.ts + span.dur >
                    parent->second->ts + parent->second->dur + slackUs) {
                std::fprintf(stderr,
                             "obs_tool: %s: trace %s: span %s "
                             "escapes its parent %s in time\n",
                             path.c_str(), traceId.c_str(),
                             span.spanId.c_str(),
                             span.parentId.c_str());
                return exitInvalid;
            }
        }
    }

    if (min_trace_procs > 0 && maxProcs < min_trace_procs) {
        std::fprintf(stderr,
                     "obs_tool: %s: widest distributed trace spans "
                     "%zu process(es), need >= %u\n",
                     path.c_str(), maxProcs, min_trace_procs);
        return exitInvalid;
    }

    std::printf("%s: valid trace-event JSON: %zu complete spans, "
                "%zu instants, %zu metadata events, %zu distributed "
                "trace(s), widest spans %zu process(es)\n",
                path.c_str(), complete, instants, metadata,
                byTrace.size(), maxProcs);
    return exitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::string(argv[1]) == "stats")
        return runStats(argc, argv);
    if (argc >= 3 && std::string(argv[1]) == "check-spans") {
        std::string file;
        unsigned minProcs = 0;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--min-trace-procs=", 0) == 0) {
                minProcs = static_cast<unsigned>(
                    std::atol(arg.c_str() + 18));
            } else if (!arg.empty() && arg[0] == '-') {
                std::fprintf(stderr, "obs_tool: unknown flag '%s'\n",
                             arg.c_str());
                return exitUsage;
            } else if (file.empty()) {
                file = arg;
            } else {
                std::fprintf(stderr, "obs_tool: extra argument '%s'\n",
                             arg.c_str());
                return exitUsage;
            }
        }
        if (file.empty()) {
            usage(argv[0]);
            return exitUsage;
        }
        return checkSpans(file, minProcs);
    }
    if (argc >= 2 && std::string(argv[1]) == "scrape")
        return runScrape(argc, argv);
    if (argc >= 2 && std::string(argv[1]) == "load")
        return runLoad(argc, argv);
    if (argc >= 2 && std::string(argv[1]) == "merge")
        return runMerge(argc, argv);
    usage(argv[0]);
    return argc < 2 ? exitOk : exitUsage;
}
