/**
 * @file
 * Trace tooling: generate any catalog trace to a binary file, load it
 * back, and print its statistics; or inspect (and optionally salvage)
 * an existing trace file. Demonstrates the trace I/O API and doubles
 * as a small command-line utility:
 *
 *   trace_tool                        # list the 45-trace catalog
 *   trace_tool INT_go                 # generate, save, reload, summarize
 *   trace_tool INT_go 500000          # custom instruction count
 *   trace_tool inspect FILE           # validate + summarize a file
 *   trace_tool inspect FILE --salvage # recover the valid prefix
 *
 * Exit codes (scriptable):
 *   0  success
 *   1  usage error / unknown trace name
 *   2  trace generation or write failure
 *   3  cannot open the input file
 *   4  input file is corrupt (magic/version/header/record/checksum)
 *   5  file was damaged but the valid prefix was salvaged
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"
#include "workloads/composer.hh"
#include "workloads/suites.hh"

namespace
{

enum ExitCode
{
    exitOk = 0,
    exitUsage = 1,
    exitWriteFailure = 2,
    exitOpenFailure = 3,
    exitCorrupt = 4,
    exitSalvaged = 5,
};

int
inspect(const std::string &path, bool salvage)
{
    using namespace clap;

    TraceReadOptions options;
    options.salvage = salvage;
    Trace trace;
    const auto result = readTrace(path, trace, options);
    if (!result) {
        const Error &error = result.error();
        std::fprintf(stderr, "trace_tool: %s\n", error.str().c_str());
        if (error.code() == ErrorCode::IoError)
            return exitOpenFailure;
        if (!salvage) {
            std::fprintf(stderr,
                         "trace_tool: hint: retry with --salvage to "
                         "recover the valid prefix\n");
        }
        return exitCorrupt;
    }

    std::printf("%s: format v%u, %zu records", path.c_str(),
                result->version, trace.size());
    if (!trace.name().empty())
        std::printf(", name '%s'", trace.name().c_str());
    std::printf("\n");
    if (result->salvaged) {
        std::fprintf(stderr,
                     "trace_tool: file damaged: salvaged %llu of %llu "
                     "declared records\n",
                     static_cast<unsigned long long>(result->records),
                     static_cast<unsigned long long>(result->declared));
    }
    const TraceStats stats = computeTraceStats(trace);
    printTraceStats(stats, std::cout);
    printTraceHistogram(stats, std::cout);
    return result->salvaged ? exitSalvaged : exitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace clap;

    if (argc >= 3 && std::string(argv[1]) == "inspect") {
        const bool salvage =
            argc > 3 && std::string(argv[3]) == "--salvage";
        return inspect(argv[2], salvage);
    }

    const auto catalog = buildCatalog();
    if (argc < 2) {
        std::printf("usage: %s <trace-name> [instructions]\n"
                    "       %s inspect <file> [--salvage]\n\n",
                    argv[0], argv[0]);
        std::printf("available traces:\n");
        std::string suite;
        for (const auto &spec : catalog) {
            if (spec.suite != suite) {
                suite = spec.suite;
                std::printf("\n  %s:", suite.c_str());
            }
            std::printf(" %s", spec.name.c_str());
        }
        std::printf("\n");
        return exitOk;
    }

    const std::string name = argv[1];
    const std::size_t insts =
        argc > 2 ? static_cast<std::size_t>(std::atol(argv[2]))
                 : defaultTraceLength();

    const TraceSpec *spec = nullptr;
    for (const auto &candidate : catalog) {
        if (candidate.name == name)
            spec = &candidate;
    }
    if (!spec) {
        std::fprintf(stderr, "unknown trace '%s' (run without "
                             "arguments for the list)\n",
                     name.c_str());
        return exitUsage;
    }

    std::printf("generating %s (%zu instructions)...\n", name.c_str(),
                insts);
    const Trace trace = generateTrace(*spec, insts);

    const std::string path = "/tmp/" + name + ".clap";
    if (const auto written = writeTrace(trace, path, {}); !written) {
        std::fprintf(stderr, "trace_tool: %s\n",
                     written.error().str().c_str());
        return exitWriteFailure;
    }
    std::printf("wrote %s\n", path.c_str());

    Trace loaded;
    const auto read = readTrace(path, loaded, TraceReadOptions{});
    if (!read) {
        std::fprintf(stderr, "trace_tool: %s\n",
                     read.error().str().c_str());
        return read.error().code() == ErrorCode::IoError
            ? exitOpenFailure
            : exitCorrupt;
    }
    std::printf("re-read %zu records; statistics:\n\n", loaded.size());
    printTraceStats(computeTraceStats(loaded), std::cout);
    return exitOk;
}
