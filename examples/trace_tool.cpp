/**
 * @file
 * Trace tooling: generate any catalog trace to a binary file, load it
 * back, and print its statistics. Demonstrates the trace I/O API and
 * doubles as a small command-line utility:
 *
 *   trace_tool                 # list the 45-trace catalog
 *   trace_tool INT_go          # generate, save, reload, summarize
 *   trace_tool INT_go 500000   # custom instruction count
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"
#include "workloads/composer.hh"
#include "workloads/suites.hh"

int
main(int argc, char **argv)
{
    using namespace clap;

    const auto catalog = buildCatalog();
    if (argc < 2) {
        std::printf("usage: %s <trace-name> [instructions]\n\n",
                    argv[0]);
        std::printf("available traces:\n");
        std::string suite;
        for (const auto &spec : catalog) {
            if (spec.suite != suite) {
                suite = spec.suite;
                std::printf("\n  %s:", suite.c_str());
            }
            std::printf(" %s", spec.name.c_str());
        }
        std::printf("\n");
        return 0;
    }

    const std::string name = argv[1];
    const std::size_t insts =
        argc > 2 ? static_cast<std::size_t>(std::atol(argv[2]))
                 : defaultTraceLength();

    const TraceSpec *spec = nullptr;
    for (const auto &candidate : catalog) {
        if (candidate.name == name)
            spec = &candidate;
    }
    if (!spec) {
        std::fprintf(stderr, "unknown trace '%s' (run without "
                             "arguments for the list)\n",
                     name.c_str());
        return 1;
    }

    std::printf("generating %s (%zu instructions)...\n", name.c_str(),
                insts);
    const Trace trace = generateTrace(*spec, insts);

    const std::string path = "/tmp/" + name + ".clap";
    if (!writeTrace(trace, path)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", path.c_str());

    Trace loaded;
    if (!readTrace(path, loaded)) {
        std::fprintf(stderr, "failed to re-read %s\n", path.c_str());
        return 1;
    }
    std::printf("re-read %zu records; statistics:\n\n", loaded.size());
    printTraceStats(computeTraceStats(loaded), std::cout);
    return 0;
}
