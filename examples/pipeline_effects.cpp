/**
 * @file
 * Pipeline effects (paper section 5): sweep the prediction gap and
 * watch prediction rate and accuracy degrade — the cost of predicting
 * with outdated information and of misprediction propagation through
 * the in-flight window. Also contrasts the stride catch-up mechanism
 * with the context predictor's lack of one.
 *
 * Build & run:  ./build/examples/pipeline_effects
 */

#include <cstdio>
#include <iostream>

#include "core/cap_predictor.hh"
#include "core/hybrid_predictor.hh"
#include "core/stride_predictor.hh"
#include "sim/predictor_sim.hh"
#include "util/table.hh"
#include "workloads/composer.hh"

int
main()
{
    using namespace clap;

    TraceSpec spec;
    spec.name = "pipeline_demo";
    spec.suite = "demo";
    spec.seed = 11;
    spec.kernels.push_back(
        {LinkedListKernel::Params{
             .numNodes = 16, .numDataFields = 2, .mutateProb = 0.05},
         2.0, 1});
    spec.kernels.push_back(
        {StrideArrayKernel::Params{
             .numArrays = 2, .numElems = 512, .chunk = 48},
         1.5, 1});
    spec.kernels.push_back(
        {CallSiteKernel::Params{
             .numSites = 4, .seqLen = 5, .calleeLoads = 3},
         1.0, 1});
    spec.kernels.push_back(
        {GlobalScalarKernel::Params{.numGlobals = 8}, 1.5, 1});
    const Trace trace = generateTrace(spec, 200000);

    Table table;
    table.row({"gap", "stride_rate", "stride_acc", "cap_rate",
               "cap_acc", "hybrid_rate", "hybrid_acc"});
    for (const unsigned gap : {0u, 2u, 4u, 8u, 12u, 16u}) {
        PredictorSimConfig sim;
        sim.gapCycles = gap;
        const bool pipelined = gap != 0;

        StridePredictorConfig stride_cfg;
        stride_cfg.pipelined = pipelined;
        StridePredictor stride(stride_cfg);
        const auto s = runPredictorSim(trace, stride, sim);

        CapPredictorConfig cap_cfg;
        cap_cfg.pipelined = pipelined;
        CapPredictor cap(cap_cfg);
        const auto c = runPredictorSim(trace, cap, sim);

        HybridConfig hybrid_cfg;
        hybrid_cfg.pipelined = pipelined;
        HybridPredictor hybrid(hybrid_cfg);
        const auto h = runPredictorSim(trace, hybrid, sim);

        table.newRow();
        table.cell(gap == 0 ? std::string("immediate")
                            : std::to_string(gap));
        table.percent(s.predictionRate());
        table.percent(s.accuracy());
        table.percent(c.predictionRate());
        table.percent(c.accuracy());
        table.percent(h.predictionRate());
        table.percent(h.accuracy());
    }
    table.print(std::cout);

    std::printf("\nWith a prediction gap, several instances of the "
                "same load are in flight:\na single misprediction "
                "propagates through the window (the stride component\n"
                "catches up by extrapolating, the context component "
                "must wait for a\npipeline drain), so both rate and "
                "accuracy degrade -- yet most of the\npredictability "
                "survives, the paper's section-5 conclusion.\n");
    return 0;
}
