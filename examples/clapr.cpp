/**
 * @file
 * clapr — the replication gateway as a standalone daemon: one CLNP
 * endpoint in front of N clapd replicas. Trains fan out to every
 * healthy replica, predicts load-balance across them, a periodic
 * health pass drives the Healthy/Suspect/Down/Joining state machine,
 * and a restarted replica is bootstrapped back into rotation from a
 * serving donor (SnapshotFetch -> SnapshotInstall -> journal replay).
 *
 * Clients need no changes: clapr speaks exactly the clapd wire
 * protocol, so `clapd --probe=<clapr endpoint>` works unchanged —
 * that is the CI smoke: probe the gateway, SIGKILL a replica, probe
 * again.
 *
 * Usage:
 *   clapr --replica=SPEC [--replica=SPEC ...]
 *         [--endpoint=unix:/tmp/clapr.sock | tcp:127.0.0.1:0]
 *         [--shards=N] [--balance=seeded|least-inflight]
 *         [--balance-seed=N] [--strikes=K] [--journal-capacity=N]
 *         [--health-interval-ms=N]
 *         [--max-connections=N] [--max-inflight=N]
 *         [--read-deadline-ms=N] [--write-deadline-ms=N]
 *         [--ready-fd=N] [--quiet]
 *
 * --shards must match the replicas' shard count (bootstrap fetches
 * every shard). --ready-fd writes one byte once the listener is
 * bound, the same readiness handshake clapd offers. Shutdown frames
 * stop clapr itself; the replicas are separate processes and keep
 * running.
 */

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/server.hh"
#include "obs/trace_events.hh"
#include "replica/gateway.hh"
#include "replica/health.hh"

namespace
{

using namespace clap;
using namespace clap::replica;

std::atomic<bool> signalled{false};

void
onSignal(int)
{
    signalled.store(true, std::memory_order_relaxed);
}

struct Options
{
    net::ServerConfig server;
    ReplicaGatewayConfig gateway;
    unsigned healthIntervalMs = 200;
    int readyFd = -1;
    bool quiet = false;
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --replica=SPEC [--replica=SPEC ...]\n"
                 "          [--endpoint=SPEC] [--shards=N]\n"
                 "          [--balance=seeded|least-inflight] "
                 "[--balance-seed=N]\n"
                 "          [--strikes=K] [--journal-capacity=N]\n"
                 "          [--health-interval-ms=N]\n"
                 "          [--max-connections=N] [--max-inflight=N]\n"
                 "          [--read-deadline-ms=N] "
                 "[--write-deadline-ms=N]\n"
                 "          [--ready-fd=N] [--quiet]\n",
                 argv0);
}

bool
parseOptions(int argc, char **argv, Options &opts)
{
    opts.server.endpoint = "unix:/tmp/clapr.sock";
    opts.server.serverName = "clapr";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto valueOf = [&arg](const char *prefix) -> const char * {
            const std::size_t len = std::strlen(prefix);
            return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len
                                                    : nullptr;
        };
        if (const char *v = valueOf("--replica=")) {
            opts.gateway.replicas.push_back(v);
        } else if (const char *v = valueOf("--endpoint=")) {
            opts.server.endpoint = v;
        } else if (const char *v = valueOf("--shards=")) {
            opts.gateway.shards = static_cast<unsigned>(std::atol(v));
        } else if (const char *v = valueOf("--balance=")) {
            if (std::strcmp(v, "seeded") == 0) {
                opts.gateway.balance =
                    ReplicaGatewayConfig::Balance::Seeded;
            } else if (std::strcmp(v, "least-inflight") == 0) {
                opts.gateway.balance =
                    ReplicaGatewayConfig::Balance::LeastInFlight;
            } else {
                std::fprintf(stderr, "clapr: unknown balance '%s'\n", v);
                return false;
            }
        } else if (const char *v = valueOf("--balance-seed=")) {
            opts.gateway.balanceSeed =
                static_cast<std::uint64_t>(std::strtoull(v, nullptr, 0));
        } else if (const char *v = valueOf("--strikes=")) {
            opts.gateway.maxStrikes =
                static_cast<unsigned>(std::atol(v));
        } else if (const char *v = valueOf("--journal-capacity=")) {
            opts.gateway.journalCapacity =
                static_cast<std::size_t>(std::atol(v));
        } else if (const char *v = valueOf("--health-interval-ms=")) {
            opts.healthIntervalMs = static_cast<unsigned>(std::atol(v));
        } else if (const char *v = valueOf("--max-connections=")) {
            opts.server.maxConnections =
                static_cast<unsigned>(std::atol(v));
        } else if (const char *v = valueOf("--max-inflight=")) {
            opts.server.maxInFlight = static_cast<unsigned>(std::atol(v));
        } else if (const char *v = valueOf("--read-deadline-ms=")) {
            opts.server.readDeadlineMs = std::atoi(v);
        } else if (const char *v = valueOf("--write-deadline-ms=")) {
            opts.server.writeDeadlineMs = std::atoi(v);
        } else if (const char *v = valueOf("--ready-fd=")) {
            opts.readyFd = std::atoi(v);
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return false;
        } else {
            std::fprintf(stderr, "clapr: unknown flag '%s'\n",
                         arg.c_str());
            usage(argv[0]);
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseOptions(argc, argv, opts))
        return 2;
    if (auto valid = opts.gateway.validate(); !valid) {
        std::fprintf(stderr, "clapr: %s\n", valid.error().str().c_str());
        return 2;
    }
    if (auto valid = opts.server.validate(); !valid) {
        std::fprintf(stderr, "clapr: %s\n", valid.error().str().c_str());
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    // Span files from a clapr/clapd fleet are merged into one
    // timeline (obs_tool merge); the process name tells them apart.
    obs::setTraceProcessName("clapr");

    ReplicaGateway gateway(opts.gateway);
    if (auto started = gateway.start(); !started) {
        std::fprintf(stderr, "clapr: %s\n",
                     started.error().str().c_str());
        return 1;
    }

    net::NetServer server(gateway, opts.server);
    if (auto started = server.start(); !started) {
        std::fprintf(stderr, "clapr: %s\n",
                     started.error().str().c_str());
        return 1;
    }

    // First pass runs synchronously inside start(): replicas that are
    // already up have joined before the first client request lands.
    // fleet_watch makes the same cadence scrape every live replica's
    // observability endpoint into the fleet view (ObsFetch on clapr
    // returns it alongside the gateway's own registry).
    HealthMonitor monitor(gateway, opts.healthIntervalMs,
                          /*fleet_watch=*/true);
    monitor.start();

    if (!opts.quiet) {
        std::printf("clapr: gateway on %s over %zu replica(s), "
                    "%u shard(s)\n",
                    server.boundEndpoint().str().c_str(),
                    opts.gateway.replicas.size(), opts.gateway.shards);
        std::fflush(stdout);
    }
    if (opts.readyFd >= 0) {
        const char byte = 'R';
        (void)!write(opts.readyFd, &byte, 1);
        close(opts.readyFd);
    }

    while (!server.shutdownRequested() &&
           !signalled.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    monitor.stop();
    server.stop();
    gateway.stop();

    if (!opts.quiet) {
        const GatewayCounters counters = gateway.counters();
        std::printf("clapr: %llu predict(s) (%llu failover(s), %llu "
                    "failed), %llu train(s) over %llu send(s), "
                    "%llu join(s)\n",
                    static_cast<unsigned long long>(counters.predicts),
                    static_cast<unsigned long long>(
                        counters.predictFailovers),
                    static_cast<unsigned long long>(
                        counters.predictsFailed),
                    static_cast<unsigned long long>(counters.trains),
                    static_cast<unsigned long long>(counters.trainSends),
                    static_cast<unsigned long long>(counters.joins));
        for (const ReplicaSnapshot &snap : gateway.replicaSnapshots()) {
            std::printf("clapr:   %s %s: %llu predict(s), %llu "
                        "train(s), %llu bootstrap(s)\n",
                        snap.endpoint.c_str(),
                        replicaStateName(snap.state),
                        static_cast<unsigned long long>(
                            snap.counters.predictsServed),
                        static_cast<unsigned long long>(
                            snap.counters.trainsApplied),
                        static_cast<unsigned long long>(
                            snap.counters.bootstraps));
        }
        std::printf("clapr: fleet watchdog: %llu scrape(s), %llu "
                    "failure(s)\n",
                    static_cast<unsigned long long>(
                        counters.fleetScrapes),
                    static_cast<unsigned long long>(
                        counters.fleetScrapeFailures));
        for (const FleetReplicaView &view : gateway.fleetView()) {
            std::printf("clapr:   %s handle p99 %.1fus total p99 "
                        "%.1fus, %llu gate veto(s) (+%llu), %llu "
                        "dropped span(s)\n",
                        view.endpoint.c_str(), view.stageHandleP99Us,
                        view.stageTotalP99Us,
                        static_cast<unsigned long long>(
                            view.gateVetoes),
                        static_cast<unsigned long long>(
                            view.gateVetoDelta),
                        static_cast<unsigned long long>(
                            view.droppedSpans));
        }
    }
    return 0;
}
