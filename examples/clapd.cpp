/**
 * @file
 * clapd — the prediction service as a standalone daemon. Builds a
 * sharded PredictionService (hybrid CAP/stride predictors), optionally
 * puts a ShardSupervisor over it, and fronts it with the net/ gateway
 * on a UDS or TCP endpoint. Runs until a client's Shutdown frame or
 * SIGINT/SIGTERM, then drains and exits 0.
 *
 * This is also the shard-migration child: bench_netchaos starts two
 * clapd processes, streams shard snapshots from the first into the
 * second over the wire (SnapshotFetch -> SnapshotInstall), and proves
 * the second resumes serving bit for bit.
 *
 * Usage:
 *   clapd [--endpoint=unix:/tmp/clapd.sock | --endpoint=tcp:127.0.0.1:0]
 *         [--shards=N] [--queue-capacity=N] [--max-batch=N]
 *         [--deterministic] [--journal-capacity=N]
 *         [--supervise] [--snapshot-dir=DIR] [--snapshot-interval-ms=N]
 *         [--max-connections=N] [--max-inflight=N]
 *         [--read-deadline-ms=N] [--write-deadline-ms=N]
 *         [--shed-fraction=F] [--reject-fraction=F]
 *         [--ready-fd=N] [--quiet]
 *
 * --ready-fd=N writes one byte to descriptor N (then closes it) once
 * the listener is bound — the no-poll readiness handshake a parent
 * process (the migration driver) waits on. --deterministic runs the
 * service without worker threads, which makes a single-connection
 * request stream a pure function of its order — the mode the
 * migration equality check requires.
 *
 * clapd --probe=SPEC [--shutdown] turns the binary into a one-shot
 * client instead: connect, ping, one predict/train round trip, and
 * (with --shutdown) a Shutdown request. Exit 0 only if every exchange
 * succeeded — the CI smoke that a separately started daemon actually
 * speaks the protocol end to end.
 */

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "core/hybrid_predictor.hh"
#include "obs/trace_events.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "serve/service.hh"
#include "serve/supervisor.hh"

namespace
{

using namespace clap;
using namespace clap::net;

std::atomic<bool> signalled{false};

void
onSignal(int)
{
    signalled.store(true, std::memory_order_relaxed);
}

struct Options
{
    ServerConfig server;
    ServiceConfig service;
    bool supervise = false;
    SupervisorConfig supervisor;
    int readyFd = -1;
    bool quiet = false;
    std::string probe;    ///< non-empty: run as a one-shot client
    bool probeShutdown = false;
};

/**
 * One-shot client probe against a running daemon: handshake, ping,
 * predict, train, stats, and optionally a Shutdown request. Every
 * failure is structured and fatal — this is the CI assertion that a
 * separately started clapd serves real clients.
 */
int
runProbe(const Options &opts)
{
    ClientConfig config;
    config.endpoint = opts.probe;
    config.clientName = "clapd-probe";
    NetClient client(config);

    if (auto pinged = client.ping(); !pinged) {
        std::fprintf(stderr, "clapd-probe: ping: %s\n",
                     pinged.error().str().c_str());
        return 1;
    }
    const LoadInfo info = client.makeInfo(0x1000, 8);
    auto pred = client.predict(info);
    if (!pred) {
        std::fprintf(stderr, "clapd-probe: predict: %s\n",
                     pred.error().str().c_str());
        return 1;
    }
    if (auto trained = client.train(info, 0x2000, *pred); !trained) {
        std::fprintf(stderr, "clapd-probe: train: %s\n",
                     trained.error().str().c_str());
        return 1;
    }
    auto stats = client.stats();
    if (!stats) {
        std::fprintf(stderr, "clapd-probe: stats: %s\n",
                     stats.error().str().c_str());
        return 1;
    }
    if (opts.probeShutdown) {
        if (auto down = client.requestShutdown(); !down) {
            std::fprintf(stderr, "clapd-probe: shutdown: %s\n",
                         down.error().str().c_str());
            return 1;
        }
    }
    if (!opts.quiet) {
        std::printf("clapd-probe: ok (%zu shard(s), %llu load(s) "
                    "trained)%s\n",
                    stats->shards.size(),
                    static_cast<unsigned long long>(
                        stats->aggregate.loads),
                    opts.probeShutdown ? ", shutdown requested" : "");
    }
    return 0;
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--endpoint=SPEC] [--shards=N] "
                 "[--queue-capacity=N] [--max-batch=N]\n"
                 "          [--deterministic] [--journal-capacity=N] "
                 "[--supervise]\n"
                 "          [--snapshot-dir=DIR] "
                 "[--snapshot-interval-ms=N]\n"
                 "          [--max-connections=N] [--max-inflight=N]\n"
                 "          [--read-deadline-ms=N] "
                 "[--write-deadline-ms=N]\n"
                 "          [--shed-fraction=F] [--reject-fraction=F]\n"
                 "          [--ready-fd=N] [--quiet]\n"
                 "       %s --probe=SPEC [--shutdown] [--quiet]\n",
                 argv0, argv0);
}

bool
parseOptions(int argc, char **argv, Options &opts)
{
    opts.service.shards = 4;
    opts.supervisor.filePrefix = "clapd";
    opts.supervisor.snapshotIntervalMs = 100;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto valueOf = [&arg](const char *prefix) -> const char * {
            const std::size_t len = std::strlen(prefix);
            return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len
                                                    : nullptr;
        };
        if (const char *v = valueOf("--endpoint=")) {
            opts.server.endpoint = v;
        } else if (const char *v = valueOf("--shards=")) {
            opts.service.shards = static_cast<unsigned>(std::atol(v));
        } else if (const char *v = valueOf("--queue-capacity=")) {
            opts.service.queueCapacity =
                static_cast<std::size_t>(std::atol(v));
        } else if (const char *v = valueOf("--max-batch=")) {
            opts.service.maxBatch = static_cast<std::size_t>(std::atol(v));
        } else if (arg == "--deterministic") {
            opts.service.deterministic = true;
        } else if (const char *v = valueOf("--journal-capacity=")) {
            opts.service.journalCapacity =
                static_cast<std::size_t>(std::atol(v));
        } else if (arg == "--supervise") {
            opts.supervise = true;
        } else if (const char *v = valueOf("--snapshot-dir=")) {
            opts.supervisor.snapshotDir = v;
        } else if (const char *v = valueOf("--snapshot-interval-ms=")) {
            opts.supervisor.snapshotIntervalMs =
                static_cast<unsigned>(std::atol(v));
        } else if (const char *v = valueOf("--max-connections=")) {
            opts.server.maxConnections =
                static_cast<unsigned>(std::atol(v));
        } else if (const char *v = valueOf("--max-inflight=")) {
            opts.server.maxInFlight = static_cast<unsigned>(std::atol(v));
        } else if (const char *v = valueOf("--read-deadline-ms=")) {
            opts.server.readDeadlineMs = std::atoi(v);
        } else if (const char *v = valueOf("--write-deadline-ms=")) {
            opts.server.writeDeadlineMs = std::atoi(v);
        } else if (const char *v = valueOf("--shed-fraction=")) {
            opts.server.shedFraction = std::atof(v);
        } else if (const char *v = valueOf("--reject-fraction=")) {
            opts.server.rejectFraction = std::atof(v);
        } else if (const char *v = valueOf("--ready-fd=")) {
            opts.readyFd = std::atoi(v);
        } else if (const char *v = valueOf("--probe=")) {
            opts.probe = v;
        } else if (arg == "--shutdown") {
            opts.probeShutdown = true;
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return false;
        } else {
            std::fprintf(stderr, "clapd: unknown flag '%s'\n",
                         arg.c_str());
            usage(argv[0]);
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseOptions(argc, argv, opts))
        return 2;
    if (!opts.probe.empty())
        return runProbe(opts);
    if (auto valid = opts.service.validate(); !valid) {
        std::fprintf(stderr, "clapd: %s\n", valid.error().str().c_str());
        return 2;
    }
    if (auto valid = opts.server.validate(); !valid) {
        std::fprintf(stderr, "clapd: %s\n", valid.error().str().c_str());
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    // Names this process in merged Perfetto timelines (obs_tool merge).
    obs::setTraceProcessName("clapd");

    PredictionService service(opts.service, [] {
        return std::make_unique<HybridPredictor>(HybridConfig{});
    });

    std::unique_ptr<ShardSupervisor> supervisor;
    if (opts.supervise) {
        if (auto valid = opts.supervisor.validate(); !valid) {
            std::fprintf(stderr, "clapd: %s\n",
                         valid.error().str().c_str());
            return 2;
        }
        supervisor =
            std::make_unique<ShardSupervisor>(service, opts.supervisor);
        if (auto snapped = supervisor->snapshotAll(); !snapped) {
            std::fprintf(stderr, "clapd: initial snapshot: %s\n",
                         snapped.error().str().c_str());
            return 1;
        }
        supervisor->start();
    }

    NetServer server(service, supervisor.get(), opts.server);
    if (auto started = server.start(); !started) {
        std::fprintf(stderr, "clapd: %s\n",
                     started.error().str().c_str());
        return 1;
    }
    if (!opts.quiet) {
        std::printf("clapd: serving %u shard(s) on %s\n",
                    opts.service.shards,
                    server.boundEndpoint().str().c_str());
        std::fflush(stdout);
    }
    if (opts.readyFd >= 0) {
        // Readiness handshake: one byte once the listener is live.
        const char byte = 'R';
        (void)!write(opts.readyFd, &byte, 1);
        close(opts.readyFd);
    }

    while (!server.shutdownRequested() &&
           !signalled.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    server.stop();
    if (supervisor)
        supervisor->stop();
    service.stop();

    if (!opts.quiet) {
        const ServerCounters counters = server.counters();
        const PredictionStats stats = service.aggregateStats();
        std::printf("clapd: %llu connection(s), %llu request(s), "
                    "%llu shed, %llu rejected, %llu corrupt frame(s); "
                    "%llu loads trained\n",
                    static_cast<unsigned long long>(counters.accepted),
                    static_cast<unsigned long long>(counters.requests),
                    static_cast<unsigned long long>(counters.admitShed),
                    static_cast<unsigned long long>(
                        counters.admitRejected),
                    static_cast<unsigned long long>(
                        counters.corruptFrames),
                    static_cast<unsigned long long>(stats.loads));
    }
    return 0;
}
