# Empty compiler generated dependencies file for clap_trace.
# This may be replaced when dependencies are built.
