file(REMOVE_RECURSE
  "libclap_trace.a"
)
