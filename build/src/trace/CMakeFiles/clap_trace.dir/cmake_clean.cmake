file(REMOVE_RECURSE
  "CMakeFiles/clap_trace.dir/record.cc.o"
  "CMakeFiles/clap_trace.dir/record.cc.o.d"
  "CMakeFiles/clap_trace.dir/trace_io.cc.o"
  "CMakeFiles/clap_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/clap_trace.dir/trace_stats.cc.o"
  "CMakeFiles/clap_trace.dir/trace_stats.cc.o.d"
  "libclap_trace.a"
  "libclap_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clap_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
