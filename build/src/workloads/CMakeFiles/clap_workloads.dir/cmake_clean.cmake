file(REMOVE_RECURSE
  "CMakeFiles/clap_workloads.dir/array_kernels.cc.o"
  "CMakeFiles/clap_workloads.dir/array_kernels.cc.o.d"
  "CMakeFiles/clap_workloads.dir/composer.cc.o"
  "CMakeFiles/clap_workloads.dir/composer.cc.o.d"
  "CMakeFiles/clap_workloads.dir/control_kernels.cc.o"
  "CMakeFiles/clap_workloads.dir/control_kernels.cc.o.d"
  "CMakeFiles/clap_workloads.dir/misc_kernels.cc.o"
  "CMakeFiles/clap_workloads.dir/misc_kernels.cc.o.d"
  "CMakeFiles/clap_workloads.dir/rds_kernels.cc.o"
  "CMakeFiles/clap_workloads.dir/rds_kernels.cc.o.d"
  "CMakeFiles/clap_workloads.dir/suites.cc.o"
  "CMakeFiles/clap_workloads.dir/suites.cc.o.d"
  "libclap_workloads.a"
  "libclap_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clap_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
