
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/array_kernels.cc" "src/workloads/CMakeFiles/clap_workloads.dir/array_kernels.cc.o" "gcc" "src/workloads/CMakeFiles/clap_workloads.dir/array_kernels.cc.o.d"
  "/root/repo/src/workloads/composer.cc" "src/workloads/CMakeFiles/clap_workloads.dir/composer.cc.o" "gcc" "src/workloads/CMakeFiles/clap_workloads.dir/composer.cc.o.d"
  "/root/repo/src/workloads/control_kernels.cc" "src/workloads/CMakeFiles/clap_workloads.dir/control_kernels.cc.o" "gcc" "src/workloads/CMakeFiles/clap_workloads.dir/control_kernels.cc.o.d"
  "/root/repo/src/workloads/misc_kernels.cc" "src/workloads/CMakeFiles/clap_workloads.dir/misc_kernels.cc.o" "gcc" "src/workloads/CMakeFiles/clap_workloads.dir/misc_kernels.cc.o.d"
  "/root/repo/src/workloads/rds_kernels.cc" "src/workloads/CMakeFiles/clap_workloads.dir/rds_kernels.cc.o" "gcc" "src/workloads/CMakeFiles/clap_workloads.dir/rds_kernels.cc.o.d"
  "/root/repo/src/workloads/suites.cc" "src/workloads/CMakeFiles/clap_workloads.dir/suites.cc.o" "gcc" "src/workloads/CMakeFiles/clap_workloads.dir/suites.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/clap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/clap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
