# Empty compiler generated dependencies file for clap_workloads.
# This may be replaced when dependencies are built.
