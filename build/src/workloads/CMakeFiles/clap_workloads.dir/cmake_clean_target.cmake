file(REMOVE_RECURSE
  "libclap_workloads.a"
)
