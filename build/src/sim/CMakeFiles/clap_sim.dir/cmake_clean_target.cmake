file(REMOVE_RECURSE
  "libclap_sim.a"
)
