# Empty dependencies file for clap_sim.
# This may be replaced when dependencies are built.
