file(REMOVE_RECURSE
  "CMakeFiles/clap_sim.dir/experiment.cc.o"
  "CMakeFiles/clap_sim.dir/experiment.cc.o.d"
  "CMakeFiles/clap_sim.dir/predictor_sim.cc.o"
  "CMakeFiles/clap_sim.dir/predictor_sim.cc.o.d"
  "CMakeFiles/clap_sim.dir/timing_sim.cc.o"
  "CMakeFiles/clap_sim.dir/timing_sim.cc.o.d"
  "libclap_sim.a"
  "libclap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
