# Empty dependencies file for clap_util.
# This may be replaced when dependencies are built.
