file(REMOVE_RECURSE
  "CMakeFiles/clap_util.dir/table.cc.o"
  "CMakeFiles/clap_util.dir/table.cc.o.d"
  "libclap_util.a"
  "libclap_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clap_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
