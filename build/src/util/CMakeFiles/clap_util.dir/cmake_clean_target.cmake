file(REMOVE_RECURSE
  "libclap_util.a"
)
