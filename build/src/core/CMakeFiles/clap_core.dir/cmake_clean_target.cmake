file(REMOVE_RECURSE
  "libclap_core.a"
)
