
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cap_component.cc" "src/core/CMakeFiles/clap_core.dir/cap_component.cc.o" "gcc" "src/core/CMakeFiles/clap_core.dir/cap_component.cc.o.d"
  "/root/repo/src/core/cap_predictor.cc" "src/core/CMakeFiles/clap_core.dir/cap_predictor.cc.o" "gcc" "src/core/CMakeFiles/clap_core.dir/cap_predictor.cc.o.d"
  "/root/repo/src/core/control_predictor.cc" "src/core/CMakeFiles/clap_core.dir/control_predictor.cc.o" "gcc" "src/core/CMakeFiles/clap_core.dir/control_predictor.cc.o.d"
  "/root/repo/src/core/hybrid_predictor.cc" "src/core/CMakeFiles/clap_core.dir/hybrid_predictor.cc.o" "gcc" "src/core/CMakeFiles/clap_core.dir/hybrid_predictor.cc.o.d"
  "/root/repo/src/core/last_address_predictor.cc" "src/core/CMakeFiles/clap_core.dir/last_address_predictor.cc.o" "gcc" "src/core/CMakeFiles/clap_core.dir/last_address_predictor.cc.o.d"
  "/root/repo/src/core/profile.cc" "src/core/CMakeFiles/clap_core.dir/profile.cc.o" "gcc" "src/core/CMakeFiles/clap_core.dir/profile.cc.o.d"
  "/root/repo/src/core/stride_component.cc" "src/core/CMakeFiles/clap_core.dir/stride_component.cc.o" "gcc" "src/core/CMakeFiles/clap_core.dir/stride_component.cc.o.d"
  "/root/repo/src/core/stride_predictor.cc" "src/core/CMakeFiles/clap_core.dir/stride_predictor.cc.o" "gcc" "src/core/CMakeFiles/clap_core.dir/stride_predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/clap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
