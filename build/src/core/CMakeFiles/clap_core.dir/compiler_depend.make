# Empty compiler generated dependencies file for clap_core.
# This may be replaced when dependencies are built.
