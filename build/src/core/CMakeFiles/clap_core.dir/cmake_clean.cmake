file(REMOVE_RECURSE
  "CMakeFiles/clap_core.dir/cap_component.cc.o"
  "CMakeFiles/clap_core.dir/cap_component.cc.o.d"
  "CMakeFiles/clap_core.dir/cap_predictor.cc.o"
  "CMakeFiles/clap_core.dir/cap_predictor.cc.o.d"
  "CMakeFiles/clap_core.dir/control_predictor.cc.o"
  "CMakeFiles/clap_core.dir/control_predictor.cc.o.d"
  "CMakeFiles/clap_core.dir/hybrid_predictor.cc.o"
  "CMakeFiles/clap_core.dir/hybrid_predictor.cc.o.d"
  "CMakeFiles/clap_core.dir/last_address_predictor.cc.o"
  "CMakeFiles/clap_core.dir/last_address_predictor.cc.o.d"
  "CMakeFiles/clap_core.dir/profile.cc.o"
  "CMakeFiles/clap_core.dir/profile.cc.o.d"
  "CMakeFiles/clap_core.dir/stride_component.cc.o"
  "CMakeFiles/clap_core.dir/stride_component.cc.o.d"
  "CMakeFiles/clap_core.dir/stride_predictor.cc.o"
  "CMakeFiles/clap_core.dir/stride_predictor.cc.o.d"
  "libclap_core.a"
  "libclap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
