# Empty compiler generated dependencies file for bench_control_based.
# This may be replaced when dependencies are built.
