file(REMOVE_RECURSE
  "../bench/bench_control_based"
  "../bench/bench_control_based.pdb"
  "CMakeFiles/bench_control_based.dir/bench_control_based.cc.o"
  "CMakeFiles/bench_control_based.dir/bench_control_based.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_control_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
