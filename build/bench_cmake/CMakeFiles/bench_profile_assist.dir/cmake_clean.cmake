file(REMOVE_RECURSE
  "../bench/bench_profile_assist"
  "../bench/bench_profile_assist.pdb"
  "CMakeFiles/bench_profile_assist.dir/bench_profile_assist.cc.o"
  "CMakeFiles/bench_profile_assist.dir/bench_profile_assist.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_profile_assist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
