# Empty dependencies file for bench_profile_assist.
# This may be replaced when dependencies are built.
