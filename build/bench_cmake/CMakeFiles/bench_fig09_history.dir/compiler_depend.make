# Empty compiler generated dependencies file for bench_fig09_history.
# This may be replaced when dependencies are built.
