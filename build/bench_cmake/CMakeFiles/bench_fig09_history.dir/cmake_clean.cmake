file(REMOVE_RECURSE
  "../bench/bench_fig09_history"
  "../bench/bench_fig09_history.pdb"
  "CMakeFiles/bench_fig09_history.dir/bench_fig09_history.cc.o"
  "CMakeFiles/bench_fig09_history.dir/bench_fig09_history.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
