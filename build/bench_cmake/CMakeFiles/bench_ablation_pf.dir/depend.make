# Empty dependencies file for bench_ablation_pf.
# This may be replaced when dependencies are built.
