file(REMOVE_RECURSE
  "../bench/bench_ablation_pf"
  "../bench/bench_ablation_pf.pdb"
  "CMakeFiles/bench_ablation_pf.dir/bench_ablation_pf.cc.o"
  "CMakeFiles/bench_ablation_pf.dir/bench_ablation_pf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
