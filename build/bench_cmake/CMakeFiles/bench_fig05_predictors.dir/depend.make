# Empty dependencies file for bench_fig05_predictors.
# This may be replaced when dependencies are built.
