file(REMOVE_RECURSE
  "../bench/bench_fig05_predictors"
  "../bench/bench_fig05_predictors.pdb"
  "CMakeFiles/bench_fig05_predictors.dir/bench_fig05_predictors.cc.o"
  "CMakeFiles/bench_fig05_predictors.dir/bench_fig05_predictors.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
