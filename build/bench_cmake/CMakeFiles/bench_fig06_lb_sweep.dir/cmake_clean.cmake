file(REMOVE_RECURSE
  "../bench/bench_fig06_lb_sweep"
  "../bench/bench_fig06_lb_sweep.pdb"
  "CMakeFiles/bench_fig06_lb_sweep.dir/bench_fig06_lb_sweep.cc.o"
  "CMakeFiles/bench_fig06_lb_sweep.dir/bench_fig06_lb_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_lb_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
