file(REMOVE_RECURSE
  "../bench/bench_lt_update_policy"
  "../bench/bench_lt_update_policy.pdb"
  "CMakeFiles/bench_lt_update_policy.dir/bench_lt_update_policy.cc.o"
  "CMakeFiles/bench_lt_update_policy.dir/bench_lt_update_policy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lt_update_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
