# Empty dependencies file for bench_lt_update_policy.
# This may be replaced when dependencies are built.
