# Empty dependencies file for bench_fig11_gap.
# This may be replaced when dependencies are built.
