file(REMOVE_RECURSE
  "../bench/bench_fig08_selector"
  "../bench/bench_fig08_selector.pdb"
  "CMakeFiles/bench_fig08_selector.dir/bench_fig08_selector.cc.o"
  "CMakeFiles/bench_fig08_selector.dir/bench_fig08_selector.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
