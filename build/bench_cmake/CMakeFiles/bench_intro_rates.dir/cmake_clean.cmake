file(REMOVE_RECURSE
  "../bench/bench_intro_rates"
  "../bench/bench_intro_rates.pdb"
  "CMakeFiles/bench_intro_rates.dir/bench_intro_rates.cc.o"
  "CMakeFiles/bench_intro_rates.dir/bench_intro_rates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
