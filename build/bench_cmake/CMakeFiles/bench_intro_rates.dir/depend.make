# Empty dependencies file for bench_intro_rates.
# This may be replaced when dependencies are built.
