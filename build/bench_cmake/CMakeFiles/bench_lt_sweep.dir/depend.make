# Empty dependencies file for bench_lt_sweep.
# This may be replaced when dependencies are built.
