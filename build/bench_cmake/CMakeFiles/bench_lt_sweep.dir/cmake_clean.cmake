file(REMOVE_RECURSE
  "../bench/bench_lt_sweep"
  "../bench/bench_lt_sweep.pdb"
  "CMakeFiles/bench_lt_sweep.dir/bench_lt_sweep.cc.o"
  "CMakeFiles/bench_lt_sweep.dir/bench_lt_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lt_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
