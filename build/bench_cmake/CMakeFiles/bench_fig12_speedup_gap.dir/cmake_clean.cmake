file(REMOVE_RECURSE
  "../bench/bench_fig12_speedup_gap"
  "../bench/bench_fig12_speedup_gap.pdb"
  "CMakeFiles/bench_fig12_speedup_gap.dir/bench_fig12_speedup_gap.cc.o"
  "CMakeFiles/bench_fig12_speedup_gap.dir/bench_fig12_speedup_gap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_speedup_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
