# Empty dependencies file for bench_fig12_speedup_gap.
# This may be replaced when dependencies are built.
