# Empty compiler generated dependencies file for bench_fig10_confidence.
# This may be replaced when dependencies are built.
