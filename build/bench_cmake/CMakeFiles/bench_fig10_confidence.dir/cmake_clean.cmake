file(REMOVE_RECURSE
  "../bench/bench_fig10_confidence"
  "../bench/bench_fig10_confidence.pdb"
  "CMakeFiles/bench_fig10_confidence.dir/bench_fig10_confidence.cc.o"
  "CMakeFiles/bench_fig10_confidence.dir/bench_fig10_confidence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
