# Empty compiler generated dependencies file for callsite_correlation.
# This may be replaced when dependencies are built.
