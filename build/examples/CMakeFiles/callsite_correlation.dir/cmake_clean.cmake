file(REMOVE_RECURSE
  "CMakeFiles/callsite_correlation.dir/callsite_correlation.cpp.o"
  "CMakeFiles/callsite_correlation.dir/callsite_correlation.cpp.o.d"
  "callsite_correlation"
  "callsite_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/callsite_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
