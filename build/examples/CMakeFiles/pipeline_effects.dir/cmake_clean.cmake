file(REMOVE_RECURSE
  "CMakeFiles/pipeline_effects.dir/pipeline_effects.cpp.o"
  "CMakeFiles/pipeline_effects.dir/pipeline_effects.cpp.o.d"
  "pipeline_effects"
  "pipeline_effects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
