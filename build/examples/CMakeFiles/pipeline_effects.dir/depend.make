# Empty dependencies file for pipeline_effects.
# This may be replaced when dependencies are built.
