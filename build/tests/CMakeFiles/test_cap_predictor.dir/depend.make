# Empty dependencies file for test_cap_predictor.
# This may be replaced when dependencies are built.
