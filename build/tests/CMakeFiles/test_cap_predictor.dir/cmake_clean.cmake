file(REMOVE_RECURSE
  "CMakeFiles/test_cap_predictor.dir/test_cap_predictor.cc.o"
  "CMakeFiles/test_cap_predictor.dir/test_cap_predictor.cc.o.d"
  "test_cap_predictor"
  "test_cap_predictor.pdb"
  "test_cap_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cap_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
