file(REMOVE_RECURSE
  "CMakeFiles/test_load_buffer.dir/test_load_buffer.cc.o"
  "CMakeFiles/test_load_buffer.dir/test_load_buffer.cc.o.d"
  "test_load_buffer"
  "test_load_buffer.pdb"
  "test_load_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_load_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
