# Empty dependencies file for test_load_buffer.
# This may be replaced when dependencies are built.
