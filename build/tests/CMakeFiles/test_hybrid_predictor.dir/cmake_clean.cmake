file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid_predictor.dir/test_hybrid_predictor.cc.o"
  "CMakeFiles/test_hybrid_predictor.dir/test_hybrid_predictor.cc.o.d"
  "test_hybrid_predictor"
  "test_hybrid_predictor.pdb"
  "test_hybrid_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
