# Empty dependencies file for test_hybrid_predictor.
# This may be replaced when dependencies are built.
