# Empty dependencies file for test_cap_component.
# This may be replaced when dependencies are built.
