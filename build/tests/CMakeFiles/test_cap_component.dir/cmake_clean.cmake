file(REMOVE_RECURSE
  "CMakeFiles/test_cap_component.dir/test_cap_component.cc.o"
  "CMakeFiles/test_cap_component.dir/test_cap_component.cc.o.d"
  "test_cap_component"
  "test_cap_component.pdb"
  "test_cap_component[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cap_component.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
