file(REMOVE_RECURSE
  "CMakeFiles/test_control_predictor.dir/test_control_predictor.cc.o"
  "CMakeFiles/test_control_predictor.dir/test_control_predictor.cc.o.d"
  "test_control_predictor"
  "test_control_predictor.pdb"
  "test_control_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
