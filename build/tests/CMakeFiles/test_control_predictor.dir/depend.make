# Empty dependencies file for test_control_predictor.
# This may be replaced when dependencies are built.
