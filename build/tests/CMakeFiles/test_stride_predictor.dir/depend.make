# Empty dependencies file for test_stride_predictor.
# This may be replaced when dependencies are built.
