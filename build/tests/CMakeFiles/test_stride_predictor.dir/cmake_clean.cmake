file(REMOVE_RECURSE
  "CMakeFiles/test_stride_predictor.dir/test_stride_predictor.cc.o"
  "CMakeFiles/test_stride_predictor.dir/test_stride_predictor.cc.o.d"
  "test_stride_predictor"
  "test_stride_predictor.pdb"
  "test_stride_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stride_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
