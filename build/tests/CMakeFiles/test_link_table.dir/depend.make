# Empty dependencies file for test_link_table.
# This may be replaced when dependencies are built.
