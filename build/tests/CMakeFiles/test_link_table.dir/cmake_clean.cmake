file(REMOVE_RECURSE
  "CMakeFiles/test_link_table.dir/test_link_table.cc.o"
  "CMakeFiles/test_link_table.dir/test_link_table.cc.o.d"
  "test_link_table"
  "test_link_table.pdb"
  "test_link_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
