# Empty compiler generated dependencies file for test_predictor_sim.
# This may be replaced when dependencies are built.
