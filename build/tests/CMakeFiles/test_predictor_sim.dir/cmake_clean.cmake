file(REMOVE_RECURSE
  "CMakeFiles/test_predictor_sim.dir/test_predictor_sim.cc.o"
  "CMakeFiles/test_predictor_sim.dir/test_predictor_sim.cc.o.d"
  "test_predictor_sim"
  "test_predictor_sim.pdb"
  "test_predictor_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predictor_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
