# Empty compiler generated dependencies file for test_lt_extensions.
# This may be replaced when dependencies are built.
