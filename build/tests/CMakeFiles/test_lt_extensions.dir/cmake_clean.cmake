file(REMOVE_RECURSE
  "CMakeFiles/test_lt_extensions.dir/test_lt_extensions.cc.o"
  "CMakeFiles/test_lt_extensions.dir/test_lt_extensions.cc.o.d"
  "test_lt_extensions"
  "test_lt_extensions.pdb"
  "test_lt_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lt_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
