file(REMOVE_RECURSE
  "CMakeFiles/test_last_address.dir/test_last_address.cc.o"
  "CMakeFiles/test_last_address.dir/test_last_address.cc.o.d"
  "test_last_address"
  "test_last_address.pdb"
  "test_last_address[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_last_address.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
