# Empty compiler generated dependencies file for test_last_address.
# This may be replaced when dependencies are built.
