# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bits[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_sat_counter[1]_include.cmake")
include("/root/repo/build/tests/test_table[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build/tests/test_history[1]_include.cmake")
include("/root/repo/build/tests/test_load_buffer[1]_include.cmake")
include("/root/repo/build/tests/test_link_table[1]_include.cmake")
include("/root/repo/build/tests/test_stride_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_cap_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_last_address[1]_include.cmake")
include("/root/repo/build/tests/test_pipelined[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_composer[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_branch_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_predictor_sim[1]_include.cmake")
include("/root/repo/build/tests/test_timing_sim[1]_include.cmake")
include("/root/repo/build/tests/test_control_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_lt_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_profile[1]_include.cmake")
include("/root/repo/build/tests/test_sim_extras[1]_include.cmake")
include("/root/repo/build/tests/test_cap_component[1]_include.cmake")
