/**
 * @file
 * Load generator for the sharded prediction service (src/serve/):
 * M concurrent client threads replay workload-composer traces against
 * a PredictionService and the harness reports aggregate throughput,
 * per-request predict latency percentiles (p50/p95/p99), and
 * per-shard queue depth, for the 1-shard baseline versus the sharded
 * configurations — the serving-layer scaling experiment the paper's
 * inline simulator cannot express.
 *
 * A second, deterministic phase runs the semantics cross-check
 * (serve/crosscheck.hh) as sweep jobs through the resilient runner:
 * for each (trace, shards) cell, a single-threaded deterministic
 * service replay must produce PredictionStats bit-for-bit equal to
 * the sharded PredictorSim reference. A mismatch fails the job (and
 * the harness exits non-zero), which is what the CI serve-smoke job
 * asserts.
 *
 * Environment knobs (besides the shared bench/sweep flags):
 *   CLAP_SERVE_SHARDS   sharded configuration size (default 4;
 *                       rounded down to a power of two)
 *   CLAP_SERVE_CLIENTS  concurrent client threads (default 4)
 *   CLAP_TRACE_INSTS    per-trace instruction budget (suites.hh)
 *
 * Chaos-under-load flags (default off; see serve/chaos.hh):
 *   --fault-rate=N   expected predictor-state bit flips injected per
 *                    second of load-phase wall clock (0 disables).
 *                    Each flip quarantines its shard; a background
 *                    ShardSupervisor snapshots and recovers while the
 *                    other shards keep serving, and clients ride out
 *                    the quarantine windows (requests shed with
 *                    ShardUnavailable are counted, not fatal).
 *   --chaos-seed=N   injection-sequence seed (default 0xc4a05)
 *
 * Note on determinism: the throughput table contains wall-clock
 * measurements and is inherently run-dependent; the cross-check
 * table, stats, and failure list are deterministic. BENCH_serve.json
 * is still written atomically via the shared machinery.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "obs/metrics.hh"
#include "serve/chaos.hh"
#include "serve/crosscheck.hh"
#include "serve/service.hh"
#include "serve/supervisor.hh"
#include "workloads/composer.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

double faultRatePerSec = 0.0; ///< --fault-rate (0 = chaos off)
std::uint64_t chaosSeed = 0xc4a05; ///< --chaos-seed

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *text = std::getenv(name);
    if (text == nullptr || *text == '\0')
        return fallback;
    const long value = std::atol(text);
    return value < 1 ? fallback : static_cast<unsigned>(value);
}

unsigned
shardedConfigSize()
{
    unsigned shards = envUnsigned("CLAP_SERVE_SHARDS", 4);
    while (!isPowerOf2(shards))
        --shards;
    return shards;
}

/// One representative trace per behavioural family; clients cycle
/// through these so the shard load is a mixed workload.
std::vector<TraceSpec>
clientSpecs()
{
    std::vector<TraceSpec> specs;
    for (const char *suite : {"INT", "MM", "TPC", "NT"})
        specs.push_back(buildSuite(suite).front());
    return specs;
}

struct LoadPoint
{
    unsigned shards = 0;
    unsigned clients = 0;
    std::uint64_t loads = 0;
    std::uint64_t overloaded = 0;
    double elapsedSec = 0.0;
    double p50Us = 0.0;
    double p95Us = 0.0;
    double p99Us = 0.0;
    std::size_t maxQueueDepth = 0;
    std::uint64_t batches = 0;
    std::uint64_t auditFailures = 0;

    /// @name Chaos-under-load counters (all 0 with --fault-rate=0)
    /// @{
    std::uint64_t unavailable = 0; ///< requests shed ShardUnavailable
    std::uint64_t faults = 0;      ///< bit flips injected
    std::uint64_t recoveries = 0;  ///< shards recovered
    std::uint64_t unrecovered = 0; ///< recovery attempts that failed
    /// @}

    double
    predictionsPerSec() const
    {
        return elapsedSec <= 0.0
            ? 0.0
            : static_cast<double>(loads - overloaded) / elapsedSec;
    }
};

/** Run one load-generation configuration: @p clients threads replay
 *  pre-generated traces against a @p shards-shard service. */
LoadPoint
runLoadPhase(unsigned shards, unsigned clients,
             const std::vector<std::shared_ptr<const Trace>> &traces)
{
    const bool chaos = faultRatePerSec > 0.0;

    ServiceConfig config;
    config.shards = shards;
    config.overload = OverloadPolicy::Block;
    if (chaos)
        config.journalCapacity = 32768;
    PredictionService service(config, hybridFactory());

    // Chaos-under-load: a background supervisor snapshots and
    // health-checks every 25 ms while a chaos thread injects seeded
    // bit flips at --fault-rate; clients ride out the quarantine
    // windows (replayTrace sheds ShardUnavailable).
    std::unique_ptr<ShardSupervisor> supervisor;
    std::unique_ptr<ChaosEngine> engine;
    if (chaos) {
        SupervisorConfig supConfig;
        supConfig.filePrefix =
            "serve_chaos-" + std::to_string(shards);
        supConfig.snapshotIntervalMs = 25;
        supervisor =
            std::make_unique<ShardSupervisor>(service, supConfig);
        ChaosConfig chaosConfig;
        chaosConfig.seed = chaosSeed;
        chaosConfig.killWorkers = false;
        chaosConfig.damageSnapshots = false;
        engine = std::make_unique<ChaosEngine>(service, *supervisor,
                                               chaosConfig);
        if (auto snapped = supervisor->snapshotAll(); !snapped) {
            BenchState::instance().failures.push_back(
                {"serve/load/shards" + std::to_string(shards) +
                     "/chaos-setup",
                 snapped.error().str()});
        }
        supervisor->start();
    }

    std::vector<Expected<ReplayResult>> results;
    results.reserve(clients);
    for (unsigned c = 0; c < clients; ++c)
        results.emplace_back(ReplayResult{});

    std::atomic<bool> loadDone{false};
    std::thread chaosThread;
    if (chaos) {
        const auto interval = std::chrono::microseconds(
            static_cast<std::int64_t>(1e6 / faultRatePerSec));
        chaosThread = std::thread([&service, &engine, &loadDone,
                                   interval] {
            (void)service;
            while (!loadDone.load(std::memory_order_relaxed)) {
                std::this_thread::sleep_for(interval);
                if (loadDone.load(std::memory_order_relaxed))
                    break;
                (void)engine->injectFault();
            }
        });
    }

    const auto begin = std::chrono::steady_clock::now();
    {
        std::vector<std::thread> threads;
        threads.reserve(clients);
        for (unsigned c = 0; c < clients; ++c) {
            threads.emplace_back([&service, &traces, &results, c] {
                ClientSession session = service.connect();
                results[c] = replayTrace(
                    session, *traces[c % traces.size()],
                    /*collect_latencies=*/true);
            });
        }
        for (auto &thread : threads)
            thread.join();
    }
    loadDone.store(true, std::memory_order_relaxed);
    if (chaosThread.joinable())
        chaosThread.join();
    if (supervisor) {
        supervisor->stop();
        // Recover anything that failed after the loop's last pass so
        // the end-of-phase health assertion below is meaningful.
        supervisor->checkAndRecover();
    }
    service.stop();
    const auto end = std::chrono::steady_clock::now();

    LoadPoint point;
    point.shards = shards;
    point.clients = clients;
    point.elapsedSec =
        std::chrono::duration<double>(end - begin).count();

    // Latencies aggregate through the obs histogram estimator —
    // the same interpolated quantiles the live scrape reports.
    obs::HistogramSnapshot latency;
    for (unsigned c = 0; c < clients; ++c) {
        if (!results[c]) {
            BenchState::instance().failures.push_back(
                {"serve/load/shards" + std::to_string(shards) +
                     "/client" + std::to_string(c),
                 results[c].error().str()});
            continue;
        }
        point.loads += results[c]->loads;
        point.overloaded += results[c]->overloaded;
        point.unavailable += results[c]->unavailable;
        for (std::uint32_t ns : results[c]->latenciesNs)
            latency.addValue(ns);
    }
    point.p50Us = latency.p50() / 1000.0;
    point.p95Us = latency.p95() / 1000.0;
    point.p99Us = latency.p99() / 1000.0;

    unsigned shard_index = 0;
    for (const ShardSnapshot &snap : service.snapshot()) {
        point.maxQueueDepth =
            std::max(point.maxQueueDepth, snap.maxQueueDepth);
        point.batches += snap.batches;
        // With chaos on, induced audit/worker failures are recovered
        // during the run; one still set here survived the final
        // recovery pass and is a real failure.
        if (snap.auditFailed) {
            ++point.auditFailures;
            BenchState::instance().failures.push_back(
                {"serve/load/shards" + std::to_string(shards) +
                     "/audit",
                 snap.auditError.str()});
        }
        if (snap.quarantined) {
            BenchState::instance().failures.push_back(
                {"serve/load/shards" + std::to_string(shards) +
                     "/shard" + std::to_string(shard_index),
                 "shard still quarantined after the final recovery "
                 "pass"});
        }
        ++shard_index;
    }
    if (chaos) {
        point.faults = engine->counts().total();
        const SupervisorStats sup = supervisor->stats();
        point.recoveries = sup.recoveries;
        point.unrecovered = sup.unrecovered;
        if (sup.unrecovered != 0) {
            BenchState::instance().failures.push_back(
                {"serve/load/shards" + std::to_string(shards) +
                     "/recovery",
                 std::to_string(sup.unrecovered) +
                     " recovery attempts failed"});
        }
        for (unsigned s = 0; s < shards; ++s)
            std::remove(supervisor->shardSnapshotPath(s).c_str());
    }
    return point;
}

/** One deterministic cross-check cell as a self-contained sweep job:
 *  stats divergence is a CorruptedState failure of the job. */
SweepJob
crosscheckJob(const std::string &key, const TraceSpec &spec,
              unsigned shards)
{
    SweepJob job;
    job.key = key;
    job.run = [spec, shards](const JobContext &) -> Expected<JobResult> {
        const std::shared_ptr<const Trace> trace =
            globalTraceStore().get(spec, defaultTraceLength());
        ServiceConfig config;
        config.shards = shards;
        // Deterministic mode drains batch-per-request; audit every
        // request would be O(table-size * trace-length) per cell.
        config.auditEveryBatches = 256;
        auto checked = crosscheckTrace(*trace, hybridFactory(), config);
        if (!checked) {
            return std::move(checked.error())
                .withContext("crosscheck on '" + spec.name + "'");
        }
        if (!checked->equal()) {
            return makeError(
                       ErrorCode::CorruptedState,
                       "service stats diverge from PredictorSim "
                       "(service spec=" +
                           std::to_string(checked->service.spec) +
                           " correct=" +
                           std::to_string(checked->service.specCorrect) +
                           ", reference spec=" +
                           std::to_string(checked->reference.spec) +
                           " correct=" +
                           std::to_string(
                               checked->reference.specCorrect) +
                           ")")
                .withContext("crosscheck on '" + spec.name + "'");
        }
        JobResult result;
        result.stats = checked->service;
        result.hasStats = true;
        result.aux0 = 1; // stats equality held
        return result;
    };
    return job;
}

struct ServeResults
{
    std::vector<LoadPoint> loadPoints;
    SweepReport crosscheck;
    std::vector<std::string> crosscheckKeys;
};

const ServeResults &
results()
{
    static const ServeResults cached = [] {
        ServeResults out;
        const unsigned sharded = shardedConfigSize();
        const unsigned clients = envUnsigned("CLAP_SERVE_CLIENTS", 4);
        const std::vector<TraceSpec> specs = clientSpecs();

        // The store shares each client trace with the cross-check
        // phase below (and caps the process at one copy per spec).
        std::vector<std::shared_ptr<const Trace>> traces;
        traces.reserve(specs.size());
        for (const auto &spec : specs) {
            traces.push_back(
                globalTraceStore().get(spec, defaultTraceLength()));
        }

        std::vector<unsigned> shard_counts{1};
        if (sharded > 1)
            shard_counts.push_back(sharded);
        for (unsigned shards : shard_counts)
            out.loadPoints.push_back(
                runLoadPhase(shards, clients, traces));

        std::vector<SweepJob> jobs;
        for (unsigned shards : shard_counts) {
            for (const auto &spec : specs) {
                const std::string key = "crosscheck/shards" +
                    std::to_string(shards) + "/" + spec.name;
                out.crosscheckKeys.push_back(key);
                jobs.push_back(crosscheckJob(key, spec, shards));
            }
        }
        out.crosscheck = runSweepJobs(jobs);
        return out;
    }();
    return cached;
}

void
BM_Serve(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    const auto &points = results().loadPoints;
    if (!points.empty()) {
        state.counters["preds_per_sec_1shard"] =
            points.front().predictionsPerSec();
        state.counters["preds_per_sec_sharded"] =
            points.back().predictionsPerSec();
    }
}
BENCHMARK(BM_Serve)->Iterations(1)->Unit(benchmark::kMillisecond);

void
printResults()
{
    const ServeResults &res = results();

    Table load;
    load.row({"shards", "clients", "loads", "preds/s", "p50_us",
              "p95_us", "p99_us", "qdepth_max", "batches",
              "audit_fail", "unavail", "faults", "recovered"});
    for (const LoadPoint &point : res.loadPoints) {
        load.newRow();
        load.cell(static_cast<std::uint64_t>(point.shards));
        load.cell(static_cast<std::uint64_t>(point.clients));
        load.cell(point.loads);
        load.cell(point.predictionsPerSec(), 0);
        load.cell(point.p50Us, 2);
        load.cell(point.p95Us, 2);
        load.cell(point.p99Us, 2);
        load.cell(static_cast<std::uint64_t>(point.maxQueueDepth));
        load.cell(point.batches);
        load.cell(point.auditFailures);
        load.cell(point.unavailable);
        load.cell(point.faults);
        load.cell(point.recoveries);
    }
    printTable("Service load generation: throughput / latency vs "
               "shard count (wall-clock; run-dependent)",
               load);

    Table check;
    check.row({"cell", "loads", "spec", "correct", "stats_equal"});
    for (std::size_t j = 0; j < res.crosscheck.outcomes.size(); ++j) {
        const JobOutcome &outcome = res.crosscheck.outcomes[j];
        check.newRow();
        check.cell(res.crosscheckKeys[j]);
        if (outcome.ok) {
            check.cell(outcome.result.stats.loads);
            check.cell(outcome.result.stats.spec);
            check.cell(outcome.result.stats.specCorrect);
            check.cell(outcome.result.aux0 == 1 ? "yes" : "NO");
        } else {
            check.cell("-");
            check.cell("-");
            check.cell("-");
            check.cell("FAILED");
        }
    }
    printTable("Deterministic cross-check: service stats vs "
               "PredictorSim reference (must all be yes)",
               check);

    if (res.loadPoints.size() >= 2) {
        const double base = res.loadPoints.front().predictionsPerSec();
        const double sharded =
            res.loadPoints.back().predictionsPerSec();
        std::printf("\nsharded/1-shard throughput ratio: %.2fx "
                    "(gains need cores; on a single-CPU host the "
                    "configurations should roughly tie)\n",
                    base <= 0.0 ? 0.0 : sharded / base);
    }
    std::printf("expected: every cross-check row reports stats_equal "
                "= yes — the service layer must not change prediction "
                "semantics\n");
}

/** Strip the chaos flags before google-benchmark sees (and rejects)
 *  them; the shared sweep flags are stripped by benchMain. */
void
parseChaosFlags(int &argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto valueOf = [&arg](const char *prefix) -> const char * {
            const std::size_t len = std::strlen(prefix);
            return arg.compare(0, len, prefix) == 0
                       ? arg.c_str() + len
                       : nullptr;
        };
        if (const char *value = valueOf("--fault-rate=")) {
            faultRatePerSec = std::strtod(value, nullptr);
            continue;
        }
        if (const char *value = valueOf("--chaos-seed=")) {
            chaosSeed = std::strtoull(value, nullptr, 0);
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    parseChaosFlags(argc, argv);
    return clap::bench::benchMain("serve", argc, argv, printResults);
}
