/**
 * @file
 * Figure 11: influence of the prediction gap on the enhanced stride
 * and hybrid predictors — prediction rate and accuracy for
 * {immediate, 4, 8, 12} cycles between prediction and verification.
 *
 * Paper reference points: hybrid rate drops ~7% going to a realistic
 * pipeline and is then nearly flat in the gap; accuracy falls from
 * 98.9% to 96.6% at gap 4 and 96.1% at gap 12; correct predictions
 * of the hybrid stay ~8.6% above the enhanced stride.
 */

#include "bench/bench_util.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

constexpr unsigned gaps[] = {0, 4, 8, 12};

struct GapResults
{
    std::vector<PredictionStats> stride;
    std::vector<PredictionStats> hybrid;
};

const GapResults &
results()
{
    static const GapResults cached = [] {
        const std::size_t len = defaultTraceLength();
        GapResults r;
        for (const unsigned gap : gaps) {
            PredictorSimConfig sim;
            sim.gapCycles = gap;
            const std::string suffix = "_g" + std::to_string(gap);
            r.stride.push_back(
                sweepPerSuite("stride" + suffix,
                              strideFactory(gap != 0), sim, len)
                    .back()
                    .stats);
            r.hybrid.push_back(
                sweepPerSuite("hybrid" + suffix,
                              hybridFactory(gap != 0), sim, len)
                    .back()
                    .stats);
        }
        return r;
    }();
    return cached;
}

void
BM_Fig11_Gap(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    state.counters["hybrid_imm_rate"] =
        results().hybrid[0].predictionRate();
    state.counters["hybrid_gap8_rate"] =
        results().hybrid[2].predictionRate();
    state.counters["hybrid_gap8_acc"] = results().hybrid[2].accuracy();
}
BENCHMARK(BM_Fig11_Gap)->Iterations(1)->Unit(benchmark::kMillisecond);

void
printResults()
{
    const auto &r = results();
    Table table;
    table.row({"gap", "stride_rate", "hybrid_rate", "stride_acc",
               "hybrid_acc", "stride_corr", "hybrid_corr"});
    for (std::size_t g = 0; g < std::size(gaps); ++g) {
        table.newRow();
        table.cell(gaps[g] == 0 ? std::string("immediate")
                                : std::to_string(gaps[g]));
        table.percent(r.stride[g].predictionRate());
        table.percent(r.hybrid[g].predictionRate());
        table.percent(r.stride[g].accuracy());
        table.percent(r.hybrid[g].accuracy());
        table.percent(r.stride[g].correctOfAllLoads());
        table.percent(r.hybrid[g].correctOfAllLoads());
    }
    printTable("Figure 11: prediction rate / accuracy vs prediction "
               "gap (average over all traces)",
               table);
    std::printf("\npaper: hybrid correct 65.9%% imm -> 57.9%% @4 -> "
                "57.4%% @8; accuracy 98.9 -> 96.6 -> 96.1; hybrid "
                "stays ~8.6%% above stride\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return clap::bench::benchMain("fig11_gap", argc, argv,
                                  printResults);
}
