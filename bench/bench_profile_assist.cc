/**
 * @file
 * Section 6 (future work): profile feedback / software assist — "to
 * ease the hardware work by letting the compiler/profiler classify
 * loads according to the expected address pattern... This reduces
 * warm-up time, helps reducing predictor size, and eliminates
 * prediction table pollution."
 *
 * For each trace we profile a training run, classify the static
 * loads, and compare the plain hybrid with the profile-assisted
 * hybrid at the baseline size and at a quarter-size configuration.
 * Expectation: with small tables the profile-assisted predictor wins
 * (the Unknown loads stop polluting, the LT is reserved for context
 * loads); at the full size the two converge.
 */

#include "bench/bench_util.hh"

#include "core/profile.hh"
#include "workloads/composer.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

struct ProfileResults
{
    // [sizeIdx]: 0 = baseline size, 1 = quarter size
    PredictionStats plain[2];
    PredictionStats profiled[2];
    double unknownFraction = 0.0;
};

HybridConfig
sizedConfig(bool small)
{
    HybridConfig config;
    if (small) {
        config.lb.entries = 1024;
        config.cap.ltEntries = 512;
    }
    return config;
}

/**
 * One profile-assist cell as a self-contained sweep job: regenerate
 * the trace, profile it when @p profiled, run the predictor, audit.
 * The size-0 profiled job additionally reports the static-load
 * classification counts through the aux counters (aux0 = classified
 * static loads, aux1 = those left Unknown).
 */
SweepJob
profileJob(const std::string &key, const TraceSpec &spec, bool small,
           bool profiled, bool count_classes)
{
    SweepJob job;
    job.key = key;
    job.run = [spec, small, profiled, count_classes](
                  const JobContext &ctx) -> Expected<JobResult> {
        const Trace trace =
            generateTrace(spec, defaultTraceLength());
        JobResult result;
        PredictorSimConfig sim;
        sim.cancel = ctx.cancel;
        std::unique_ptr<AddressPredictor> predictor;
        if (profiled) {
            LoadClassifier classifier;
            for (const auto &rec : trace.records()) {
                if (rec.isLoad())
                    classifier.observe(rec.pc, rec.effAddr);
            }
            const auto classes = classifier.classifyAll();
            if (count_classes) {
                for (const auto &[pc, cls] : classes) {
                    (void)pc;
                    ++result.aux0;
                    result.aux1 +=
                        cls == LoadClass::Unknown ? 1 : 0;
                }
            }
            predictor = std::make_unique<ProfileAssistedPredictor>(
                sizedConfig(small), classes);
        } else {
            predictor = std::make_unique<HybridPredictor>(
                sizedConfig(small));
        }
        result.stats = runPredictorSim(trace, *predictor, sim);
        result.hasStats = true;
        if (auto audit = predictor->audit(); !audit) {
            return std::move(audit.error())
                .withContext("after trace '" + spec.name + "'");
        }
        return result;
    };
    return job;
}

const ProfileResults &
results()
{
    static const ProfileResults cached = [] {
        std::vector<SweepJob> jobs;
        for (const auto &spec : buildCatalog()) {
            for (const int size : {0, 1}) {
                const std::string suffix =
                    (size == 1 ? "/small/" : "/base/") + spec.name;
                jobs.push_back(profileJob("plain" + suffix, spec,
                                          size == 1, false, false));
                jobs.push_back(profileJob("profiled" + suffix, spec,
                                          size == 1, true,
                                          size == 0));
            }
        }

        const SweepReport report = runSweepJobs(jobs);

        ProfileResults r;
        std::uint64_t unknown = 0;
        std::uint64_t total = 0;
        // Job layout per spec: plain/base, profiled/base,
        // plain/small, profiled/small.
        for (std::size_t j = 0; j < report.outcomes.size(); ++j) {
            const JobOutcome &outcome = report.outcomes[j];
            if (!outcome.ok)
                continue;
            const int size = static_cast<int>((j % 4) / 2);
            if ((j % 2) == 0) {
                r.plain[size].merge(outcome.result.stats);
            } else {
                r.profiled[size].merge(outcome.result.stats);
                total += outcome.result.aux0;
                unknown += outcome.result.aux1;
            }
        }
        r.unknownFraction =
            total == 0 ? 0.0 : static_cast<double>(unknown) / total;
        return r;
    }();
    return cached;
}

void
BM_ProfileAssist(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    state.counters["plain_small_correct"] =
        results().plain[1].correctOfAllLoads();
    state.counters["profiled_small_correct"] =
        results().profiled[1].correctOfAllLoads();
}
BENCHMARK(BM_ProfileAssist)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
printResults()
{
    const auto &r = results();
    Table table;
    table.row({"config", "plain_correct", "profiled_correct",
               "plain_acc", "profiled_acc"});
    const char *labels[2] = {"baseline (4K LB / 4K LT)",
                             "small (1K LB / 512 LT)"};
    for (int size = 0; size < 2; ++size) {
        table.newRow();
        table.cell(std::string(labels[size]));
        table.percent(r.plain[size].correctOfAllLoads());
        table.percent(r.profiled[size].correctOfAllLoads());
        table.percent(r.plain[size].accuracy());
        table.percent(r.profiled[size].accuracy());
    }
    printTable("Section 6 extension: profile-assisted hybrid vs "
               "plain hybrid",
               table);
    std::printf("\nstatic loads classified Unknown (filtered): "
                "%.1f%%\n",
                100.0 * r.unknownFraction);
    std::printf("paper (qualitative): classification reduces warm-up "
                "time, predictor size, and table pollution\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return clap::bench::benchMain("profile_assist", argc, argv,
                                  printResults);
}
