/**
 * @file
 * Section 6 (future work): profile feedback / software assist — "to
 * ease the hardware work by letting the compiler/profiler classify
 * loads according to the expected address pattern... This reduces
 * warm-up time, helps reducing predictor size, and eliminates
 * prediction table pollution."
 *
 * For each trace we profile a training run, classify the static
 * loads, and compare the plain hybrid with the profile-assisted
 * hybrid at the baseline size and at a quarter-size configuration.
 * Expectation: with small tables the profile-assisted predictor wins
 * (the Unknown loads stop polluting, the LT is reserved for context
 * loads); at the full size the two converge.
 */

#include "bench/bench_util.hh"

#include "core/profile.hh"
#include "workloads/composer.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

struct ProfileResults
{
    // [sizeIdx]: 0 = baseline size, 1 = quarter size
    PredictionStats plain[2];
    PredictionStats profiled[2];
    double unknownFraction = 0.0;
};

HybridConfig
sizedConfig(bool small)
{
    HybridConfig config;
    if (small) {
        config.lb.entries = 1024;
        config.cap.ltEntries = 512;
    }
    return config;
}

const ProfileResults &
results()
{
    static const ProfileResults cached = [] {
        const std::size_t len = defaultTraceLength();
        ProfileResults r;
        std::uint64_t unknown = 0;
        std::uint64_t total = 0;
        for (const auto &spec : buildCatalog()) {
            const Trace trace = generateTrace(spec, len);

            LoadClassifier classifier;
            for (const auto &rec : trace.records()) {
                if (rec.isLoad())
                    classifier.observe(rec.pc, rec.effAddr);
            }
            const auto classes = classifier.classifyAll();
            for (const auto &[pc, cls] : classes) {
                (void)pc;
                ++total;
                unknown += cls == LoadClass::Unknown ? 1 : 0;
            }

            for (const int size : {0, 1}) {
                HybridPredictor plain(sizedConfig(size == 1));
                r.plain[size].merge(runPredictorSim(trace, plain, {}));
                ProfileAssistedPredictor profiled(
                    sizedConfig(size == 1), classes);
                r.profiled[size].merge(
                    runPredictorSim(trace, profiled, {}));
            }
        }
        r.unknownFraction =
            total == 0 ? 0.0 : static_cast<double>(unknown) / total;
        return r;
    }();
    return cached;
}

void
BM_ProfileAssist(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    state.counters["plain_small_correct"] =
        results().plain[1].correctOfAllLoads();
    state.counters["profiled_small_correct"] =
        results().profiled[1].correctOfAllLoads();
}
BENCHMARK(BM_ProfileAssist)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
printResults()
{
    const auto &r = results();
    Table table;
    table.row({"config", "plain_correct", "profiled_correct",
               "plain_acc", "profiled_acc"});
    const char *labels[2] = {"baseline (4K LB / 4K LT)",
                             "small (1K LB / 512 LT)"};
    for (int size = 0; size < 2; ++size) {
        table.newRow();
        table.cell(std::string(labels[size]));
        table.percent(r.plain[size].correctOfAllLoads());
        table.percent(r.profiled[size].correctOfAllLoads());
        table.percent(r.plain[size].accuracy());
        table.percent(r.profiled[size].accuracy());
    }
    printTable("Section 6 extension: profile-assisted hybrid vs "
               "plain hybrid",
               table);
    std::printf("\nstatic loads classified Unknown (filtered): "
                "%.1f%%\n",
                100.0 * r.unknownFraction);
    std::printf("paper (qualitative): classification reduces warm-up "
                "time, predictor size, and table pollution\n");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printResults();
    return 0;
}
