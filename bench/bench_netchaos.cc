/**
 * @file
 * The wire-level chaos proof for src/net/: a single client replays a
 * trace through the full gateway stack while a seeded NetChaos layer
 * injects disconnects, torn frames, stalls, and bit flips — and the
 * harness asserts the contract the protocol was designed around:
 * every request ends in a correct reply or a structured error, never
 * a hang and never a reply paired with the wrong request
 * (wrong_replies must be 0 in every phase).
 *
 * Three phases, all with deterministic tables:
 *
 *   1. Chaos round trips (in-process server, UDS): two fault tiers
 *      (mild, harsh). All chaos draws happen at send time
 *      (net/chaos.hh), so every counter in the table is a pure
 *      function of the seed — running the binary twice must produce
 *      byte-identical BENCH_netchaos.json, which is exactly what the
 *      CI net-smoke job diffs.
 *
 *   2. Server kill/restart: the server runs as a child process
 *      (this binary re-executed with --child-serve); the driver
 *      SIGKILLs it between replay segments and restarts it, and the
 *      client rides through each kill with exactly one reconnect.
 *
 *   3. Shard migration: process A serves the first half of the trace,
 *      its shard snapshots are streamed over the wire
 *      (SnapshotFetch -> SnapshotInstall) into a fresh process B,
 *      which serves the second half. B's final aggregate
 *      PredictionStats must equal serve/crosscheck's
 *      shardedReferenceStats bit for bit — a migrated service is
 *      indistinguishable from one that never moved.
 *
 * Flags (besides the shared bench/sweep flags):
 *   --netchaos-seed=N   chaos schedule seed (default 0xc4a0_e7)
 *
 * Child mode (internal): --child-serve=ENDPOINT --shards=N
 * --ready-fd=FD runs a deterministic service + gateway until a
 * Shutdown frame (or SIGKILL), writing one readiness byte to FD.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "net/chaos.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "serve/crosscheck.hh"
#include "serve/service.hh"
#include "workloads/composer.hh"

namespace
{

using namespace clap;
using namespace clap::bench;
using namespace clap::net;

std::uint64_t chaosSeed = 0xc4a0e7; ///< --netchaos-seed

std::string
socketPath(const char *tag)
{
    return "/tmp/clap_netchaos_" + std::to_string(getpid()) + "_" +
           tag + ".sock";
}

std::shared_ptr<const Trace>
benchTrace()
{
    return globalTraceStore().get(buildSuite("INT").front(),
                                  defaultTraceLength());
}

/* ------------------------------------------------------------------ */
/* Child mode: this binary re-executed as the server process.         */
/* ------------------------------------------------------------------ */

int
runChildServe(const std::string &endpoint, unsigned shards,
              int ready_fd)
{
    std::signal(SIGPIPE, SIG_IGN);
    ServiceConfig serviceConfig;
    serviceConfig.shards = shards;
    serviceConfig.deterministic = true;
    serviceConfig.overload = OverloadPolicy::Block;
    PredictionService service(serviceConfig, hybridFactory());

    ServerConfig serverConfig;
    serverConfig.endpoint = endpoint;
    NetServer server(service, nullptr, serverConfig);
    if (auto started = server.start(); !started) {
        std::fprintf(stderr, "child-serve: %s\n",
                     started.error().str().c_str());
        return 1;
    }
    if (ready_fd >= 0) {
        const char byte = 'R';
        (void)!write(ready_fd, &byte, 1);
        close(ready_fd);
    }
    while (!server.shutdownRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    server.stop();
    service.stop();
    return 0;
}

/** One spawned server process (fork + exec of /proc/self/exe). */
struct ChildServer
{
    pid_t pid = -1;
    std::string endpoint;

    /** Spawn and block until the child's readiness byte arrives. */
    bool
    start(const std::string &endpoint_spec, unsigned shards,
          std::string &error)
    {
        endpoint = endpoint_spec;
        char self[4096];
        const ssize_t n =
            readlink("/proc/self/exe", self, sizeof(self) - 1);
        if (n <= 0) {
            error = "readlink /proc/self/exe failed";
            return false;
        }
        self[n] = '\0';

        int ready[2];
        if (pipe(ready) != 0) {
            error = "pipe() failed";
            return false;
        }
        const std::string serveArg = "--child-serve=" + endpoint_spec;
        const std::string shardsArg =
            "--shards=" + std::to_string(shards);
        const std::string readyArg =
            "--ready-fd=" + std::to_string(ready[1]);

        pid = fork();
        if (pid < 0) {
            close(ready[0]);
            close(ready[1]);
            error = "fork() failed";
            return false;
        }
        if (pid == 0) {
            close(ready[0]);
            char *args[] = {self, const_cast<char *>(serveArg.c_str()),
                            const_cast<char *>(shardsArg.c_str()),
                            const_cast<char *>(readyArg.c_str()),
                            nullptr};
            execv(self, args);
            _exit(127);
        }
        close(ready[1]);

        // Block on the readiness byte (the child writes it once its
        // listener is bound); EOF means the child died first.
        char byte = 0;
        const ssize_t got = read(ready[0], &byte, 1);
        close(ready[0]);
        if (got != 1) {
            error = "server child exited before becoming ready";
            (void)kill();
            return false;
        }
        return true;
    }

    /** SIGKILL + reap (the crash the client must ride through). */
    int
    kill()
    {
        if (pid < 0)
            return -1;
        ::kill(pid, SIGKILL);
        int status = 0;
        waitpid(pid, &status, 0);
        pid = -1;
        return status;
    }

    /** Reap after a client-requested shutdown. */
    int
    wait()
    {
        if (pid < 0)
            return -1;
        int status = 0;
        waitpid(pid, &status, 0);
        pid = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }
};

/* ------------------------------------------------------------------ */
/* Shared replay machinery.                                           */
/* ------------------------------------------------------------------ */

struct ReplayCounts
{
    std::uint64_t loads = 0;
    std::uint64_t predictErrors = 0; ///< structured errors after retries
    std::uint64_t trainErrors = 0;   ///< one-shot trains that failed
};

/**
 * Replay records [@p first, @p last) of @p trace through @p client,
 * immediate-update model. A predict that still fails after the retry
 * budget sheds that load (its train is skipped); a failed train is
 * never retried (outcome unknown) and counts as a training gap. Both
 * are structured outcomes — what must never happen is a hang or a
 * wrong reply, and those are asserted elsewhere.
 */
ReplayCounts
replaySlice(NetClient &client, const Trace &trace, std::size_t first,
            std::size_t last)
{
    ReplayCounts counts;
    const auto &records = trace.records();
    for (std::size_t i = first; i < last && i < records.size(); ++i) {
        const auto &rec = records[i];
        if (rec.isLoad()) {
            ++counts.loads;
            auto pred =
                client.predict(client.makeInfo(rec.pc, rec.immOffset));
            if (!pred) {
                ++counts.predictErrors;
                continue;
            }
            auto trained = client.train(
                client.makeInfo(rec.pc, rec.immOffset), rec.effAddr,
                *pred);
            if (!trained)
                ++counts.trainErrors;
        } else if (rec.isBranch()) {
            client.observeBranch(rec.taken);
        } else if (rec.cls == InstClass::Call) {
            client.observeCall(rec.pc);
        }
    }
    return counts;
}

ClientConfig
clientConfig(const std::string &endpoint)
{
    ClientConfig config;
    config.endpoint = endpoint;
    config.clientName = "netchaos";
    config.maxAttempts = 8;
    config.backoffBaseMs = 1;
    config.backoffMaxMs = 20;
    return config;
}

/* ------------------------------------------------------------------ */
/* Phase 1: seeded chaos round trips against an in-process server.    */
/* ------------------------------------------------------------------ */

struct ChaosTier
{
    const char *name;
    NetChaosConfig config;
};

std::vector<ChaosTier>
chaosTiers()
{
    std::vector<ChaosTier> tiers;
    {
        ChaosTier mild{"mild", {}};
        mild.config.seed = chaosSeed;
        mild.config.disconnectRate = 0.002;
        mild.config.tearRate = 0.002;
        mild.config.stallRate = 0.001;
        mild.config.flipSendRate = 0.002;
        mild.config.replyDisconnectRate = 0.001;
        mild.config.replyStallRate = 0.001;
        mild.config.flipRecvRate = 0.001;
        tiers.push_back(mild);
    }
    {
        ChaosTier harsh{"harsh", {}};
        harsh.config.seed = chaosSeed ^ 0x9e3779b97f4a7c15ull;
        harsh.config.disconnectRate = 0.01;
        harsh.config.tearRate = 0.01;
        harsh.config.stallRate = 0.005;
        harsh.config.flipSendRate = 0.01;
        harsh.config.replyDisconnectRate = 0.005;
        harsh.config.replyStallRate = 0.005;
        harsh.config.flipRecvRate = 0.005;
        tiers.push_back(harsh);
    }
    return tiers;
}

struct ChaosPhaseRow
{
    std::string tier;
    ReplayCounts counts;
    ClientCounters client;
    NetChaosStats faults;
    ServerCounters server;
    std::uint64_t serviceLoads = 0; ///< loads the predictor trained on
};

ChaosPhaseRow
runChaosTier(const ChaosTier &tier, const Trace &trace)
{
    ChaosPhaseRow row;
    row.tier = tier.name;

    ServiceConfig serviceConfig;
    serviceConfig.shards = 2;
    serviceConfig.deterministic = true;
    serviceConfig.overload = OverloadPolicy::Block;
    PredictionService service(serviceConfig, hybridFactory());

    ServerConfig serverConfig;
    serverConfig.endpoint =
        "unix:" + socketPath(("chaos-" + row.tier).c_str());
    // Reconnect bursts briefly overlap old (dying) and new
    // connections; a generous budget keeps turned_away at a
    // deterministic zero.
    serverConfig.maxConnections = 256;
    NetServer server(service, nullptr, serverConfig);
    if (auto started = server.start(); !started) {
        BenchState::instance().failures.push_back(
            {"netchaos/chaos/" + row.tier + "/start",
             started.error().str()});
        return row;
    }

    NetChaos chaos(tier.config);
    ClientConfig config = clientConfig(server.boundEndpoint().str());
    config.decorate = [&chaos](std::unique_ptr<Stream> inner) {
        return chaos.wrap(std::move(inner));
    };
    {
        NetClient client(config);
        row.counts =
            replaySlice(client, trace, 0, trace.records().size());
        row.client = client.counters();
    }
    server.stop();
    service.stop();
    std::remove(socketPath(("chaos-" + row.tier).c_str()).c_str());

    row.faults = chaos.stats();
    row.server = server.counters();
    row.serviceLoads = service.aggregateStats().loads;

    if (row.client.wrongReplies != 0) {
        BenchState::instance().failures.push_back(
            {"netchaos/chaos/" + row.tier + "/wrong-replies",
             std::to_string(row.client.wrongReplies) +
                 " replies paired with the wrong request"});
    }
    return row;
}

/* ------------------------------------------------------------------ */
/* Phase 2: server kill/restart between replay segments.              */
/* ------------------------------------------------------------------ */

struct KillPhaseRow
{
    unsigned kills = 0;
    ReplayCounts counts;
    ClientCounters client;
    bool completed = false;
};

KillPhaseRow
runKillPhase(const Trace &trace)
{
    constexpr unsigned segments = 4; // 3 kills
    KillPhaseRow row;
    const std::string endpoint = "unix:" + socketPath("kill");

    ChildServer child;
    std::string error;
    if (!child.start(endpoint, 2, error)) {
        BenchState::instance().failures.push_back(
            {"netchaos/kill/start", error});
        return row;
    }

    NetClient client(clientConfig(endpoint));
    const std::size_t total = trace.records().size();
    for (unsigned seg = 0; seg < segments; ++seg) {
        const std::size_t first = total * seg / segments;
        const std::size_t last = total * (seg + 1) / segments;
        const ReplayCounts counts =
            replaySlice(client, trace, first, last);
        row.counts.loads += counts.loads;
        row.counts.predictErrors += counts.predictErrors;
        row.counts.trainErrors += counts.trainErrors;
        if (seg + 1 == segments)
            break;

        // Crash the server between segments and block on the restart's
        // readiness byte — so the replaying client's one reconnect is
        // deterministic, not a race with server startup.
        child.kill();
        ++row.kills;
        if (!child.start(endpoint, 2, error)) {
            BenchState::instance().failures.push_back(
                {"netchaos/kill/restart" + std::to_string(seg), error});
            return row;
        }
    }
    row.client = client.counters();
    row.completed = true;

    if (auto stopped = client.requestShutdown(); !stopped) {
        BenchState::instance().failures.push_back(
            {"netchaos/kill/shutdown", stopped.error().str()});
    }
    child.wait();
    std::remove(socketPath("kill").c_str());

    if (row.client.wrongReplies != 0) {
        BenchState::instance().failures.push_back(
            {"netchaos/kill/wrong-replies",
             std::to_string(row.client.wrongReplies) +
                 " replies paired with the wrong request"});
    }
    if (row.counts.predictErrors != 0 || row.counts.trainErrors != 0) {
        // Kills land between round trips and the restart is awaited,
        // so every request must still end in a correct reply — the
        // failures ride entirely inside the retry budget.
        BenchState::instance().failures.push_back(
            {"netchaos/kill/errors",
             std::to_string(row.counts.predictErrors) + " predicts / " +
                 std::to_string(row.counts.trainErrors) +
                 " trains failed despite awaited restarts"});
    }
    return row;
}

/* ------------------------------------------------------------------ */
/* Phase 3: wire-streamed shard migration A -> B.                     */
/* ------------------------------------------------------------------ */

struct MigratePhaseRow
{
    unsigned shards = 2;
    ReplayCounts counts;
    std::uint64_t snapshotBytes = 0;
    std::uint32_t sectionsRestored = 0;
    bool salvaged = false;
    PredictionStats migrated;
    PredictionStats reference;
    bool statsEqual = false;
    bool completed = false;
};

MigratePhaseRow
runMigratePhase(const Trace &trace)
{
    MigratePhaseRow row;
    const std::string endpointA = "unix:" + socketPath("migrate-a");
    const std::string endpointB = "unix:" + socketPath("migrate-b");

    ChildServer serverA;
    std::string error;
    if (!serverA.start(endpointA, row.shards, error)) {
        BenchState::instance().failures.push_back(
            {"netchaos/migrate/start-a", error});
        return row;
    }

    // First half of the trace into A. The client object survives the
    // migration below, carrying its GHR/path history across servers
    // exactly as a session would across a shard handoff.
    NetClient client(clientConfig(endpointA));
    const std::size_t half = trace.records().size() / 2;
    row.counts = replaySlice(client, trace, 0, half);

    // Stream every shard's snapshot out of A, then let A go.
    std::vector<std::string> snapshots(row.shards);
    for (unsigned s = 0; s < row.shards; ++s) {
        auto fetched = client.fetchSnapshot(s);
        if (!fetched) {
            BenchState::instance().failures.push_back(
                {"netchaos/migrate/fetch" + std::to_string(s),
                 fetched.error().str()});
            serverA.kill();
            return row;
        }
        snapshots[s] = std::move(*fetched);
        row.snapshotBytes += snapshots[s].size();
    }
    if (auto stopped = client.requestShutdown(); !stopped) {
        BenchState::instance().failures.push_back(
            {"netchaos/migrate/shutdown-a", stopped.error().str()});
    }
    serverA.wait();
    std::remove(socketPath("migrate-a").c_str());

    // Install into a fresh process B and finish the trace there.
    ChildServer serverB;
    if (!serverB.start(endpointB, row.shards, error)) {
        BenchState::instance().failures.push_back(
            {"netchaos/migrate/start-b", error});
        return row;
    }
    client.disconnect();
    NetClient clientB(clientConfig(endpointB));
    for (unsigned s = 0; s < row.shards; ++s) {
        auto installed = clientB.installSnapshot(s, snapshots[s]);
        if (!installed) {
            BenchState::instance().failures.push_back(
                {"netchaos/migrate/install" + std::to_string(s),
                 installed.error().str()});
            serverB.kill();
            return row;
        }
        row.sectionsRestored += installed->first;
        row.salvaged = row.salvaged || installed->second;
    }

    // Hand the front-end history over bit for bit: the session
    // context survives the server switch along with the shard state.
    clientB.adoptHistory(client.ghr(), client.pathHist());

    const ReplayCounts second =
        replaySlice(clientB, trace, half, trace.records().size());
    row.counts.loads += second.loads;
    row.counts.predictErrors += second.predictErrors;
    row.counts.trainErrors += second.trainErrors;

    // B's aggregate must now equal the never-migrated reference.
    auto stats = clientB.stats();
    if (!stats) {
        BenchState::instance().failures.push_back(
            {"netchaos/migrate/stats", stats.error().str()});
        serverB.kill();
        return row;
    }
    row.migrated = stats->aggregate;
    row.reference =
        shardedReferenceStats(trace, hybridFactory(), row.shards);
    row.statsEqual = row.migrated == row.reference;
    row.completed = true;

    if (auto stopped = clientB.requestShutdown(); !stopped) {
        BenchState::instance().failures.push_back(
            {"netchaos/migrate/shutdown-b", stopped.error().str()});
    }
    serverB.wait();
    std::remove(socketPath("migrate-b").c_str());

    if (!row.statsEqual) {
        BenchState::instance().failures.push_back(
            {"netchaos/migrate/stats-equal",
             "migrated stats diverge from reference (migrated spec=" +
                 std::to_string(row.migrated.spec) + " correct=" +
                 std::to_string(row.migrated.specCorrect) +
                 ", reference spec=" +
                 std::to_string(row.reference.spec) + " correct=" +
                 std::to_string(row.reference.specCorrect) + ")"});
    }
    if (row.counts.predictErrors != 0 || row.counts.trainErrors != 0) {
        BenchState::instance().failures.push_back(
            {"netchaos/migrate/errors",
             "chaos-free migration replay shed requests"});
    }
    return row;
}

/* ------------------------------------------------------------------ */
/* Harness plumbing.                                                  */
/* ------------------------------------------------------------------ */

struct NetChaosResults
{
    std::vector<ChaosPhaseRow> chaos;
    KillPhaseRow kill;
    MigratePhaseRow migrate;
};

const NetChaosResults &
results()
{
    static const NetChaosResults cached = [] {
        std::signal(SIGPIPE, SIG_IGN);
        NetChaosResults out;
        const std::shared_ptr<const Trace> trace = benchTrace();
        for (const ChaosTier &tier : chaosTiers())
            out.chaos.push_back(runChaosTier(tier, *trace));
        out.kill = runKillPhase(*trace);
        out.migrate = runMigratePhase(*trace);
        return out;
    }();
    return cached;
}

void
BM_NetChaos(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    double wrong = 0.0;
    for (const auto &row : results().chaos)
        wrong += static_cast<double>(row.client.wrongReplies);
    state.counters["wrong_replies"] = wrong;
}
BENCHMARK(BM_NetChaos)->Iterations(1)->Unit(benchmark::kMillisecond);

void
printResults()
{
    const NetChaosResults &res = results();

    Table chaos;
    chaos.row({"tier", "loads", "preds_ok", "pred_err", "trains_ok",
               "train_err", "retries", "connects", "corrupt_reply",
               "wrong_replies", "go_aways", "faults", "srv_corrupt",
               "svc_loads"});
    for (const ChaosPhaseRow &row : res.chaos) {
        chaos.newRow();
        chaos.cell(row.tier);
        chaos.cell(row.counts.loads);
        chaos.cell(row.client.predictsOk);
        chaos.cell(row.counts.predictErrors);
        chaos.cell(row.client.trainsOk);
        chaos.cell(row.counts.trainErrors);
        chaos.cell(row.client.retries);
        chaos.cell(row.client.connects);
        chaos.cell(row.client.corruptReplies);
        chaos.cell(row.client.wrongReplies);
        chaos.cell(row.client.goAways);
        chaos.cell(row.faults.total());
        chaos.cell(row.server.corruptFrames);
        chaos.cell(row.serviceLoads);
    }
    printTable("Seeded wire chaos: every request resolves, "
               "wrong_replies must be 0 (byte-identical across "
               "same-seed runs)",
               chaos);

    Table kill;
    kill.row({"kills", "loads", "pred_err", "train_err", "retries",
              "connects", "wrong_replies", "completed"});
    kill.newRow();
    kill.cell(static_cast<std::uint64_t>(res.kill.kills));
    kill.cell(res.kill.counts.loads);
    kill.cell(res.kill.counts.predictErrors);
    kill.cell(res.kill.counts.trainErrors);
    kill.cell(res.kill.client.retries);
    kill.cell(res.kill.client.connects);
    kill.cell(res.kill.client.wrongReplies);
    kill.cell(res.kill.completed ? "yes" : "NO");
    printTable("Server kill/restart: the client rides through each "
               "SIGKILL with a reconnect",
               kill);

    Table migrate;
    migrate.row({"shards", "loads", "snap_bytes", "sections",
                 "salvaged", "mig_spec", "mig_correct", "ref_spec",
                 "ref_correct", "stats_equal"});
    migrate.newRow();
    migrate.cell(static_cast<std::uint64_t>(res.migrate.shards));
    migrate.cell(res.migrate.counts.loads);
    migrate.cell(res.migrate.snapshotBytes);
    migrate.cell(
        static_cast<std::uint64_t>(res.migrate.sectionsRestored));
    migrate.cell(res.migrate.salvaged ? "yes" : "no");
    migrate.cell(res.migrate.migrated.spec);
    migrate.cell(res.migrate.migrated.specCorrect);
    migrate.cell(res.migrate.reference.spec);
    migrate.cell(res.migrate.reference.specCorrect);
    migrate.cell(res.migrate.statsEqual ? "yes" : "NO");
    printTable("Wire-streamed shard migration: process B must equal "
               "the never-migrated reference bit for bit",
               migrate);

    std::printf("\nexpected: wrong_replies = 0 everywhere, kill phase "
                "completed = yes with zero shed requests, migration "
                "stats_equal = yes\n");
}

void
parseNetChaosFlags(int &argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.compare(0, 16, "--netchaos-seed=") == 0) {
            chaosSeed = std::strtoull(arg.c_str() + 16, nullptr, 0);
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    // Child mode: no benchmark harness, just the server loop.
    std::string childEndpoint;
    unsigned childShards = 2;
    int readyFd = -1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.compare(0, 14, "--child-serve=") == 0)
            childEndpoint = arg.substr(14);
        else if (arg.compare(0, 9, "--shards=") == 0 &&
                 !childEndpoint.empty())
            childShards =
                static_cast<unsigned>(std::atol(arg.c_str() + 9));
        else if (arg.compare(0, 11, "--ready-fd=") == 0)
            readyFd = std::atoi(arg.c_str() + 11);
    }
    if (!childEndpoint.empty())
        return runChildServe(childEndpoint, childShards, readyFd);

    parseNetChaosFlags(argc, argv);
    return clap::bench::benchMain("netchaos", argc, argv, printResults);
}
