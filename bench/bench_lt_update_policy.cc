/**
 * @file
 * Section 4.3: link-table update policies — update always, update
 * unless the stride component predicted correctly, update unless the
 * stride component predicted correctly AND was selected.
 *
 * Paper reference point: "surprisingly enough, the update always
 * option results in slightly better prediction results on almost all
 * traces" (unstable stride-like inner loops keep their links only if
 * always recorded); selective policies mainly save LT space.
 */

#include "bench/bench_util.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

struct PolicyConfig
{
    const char *label;
    LtUpdatePolicy policy;
};

constexpr PolicyConfig policies[] = {
    {"always", LtUpdatePolicy::Always},
    {"unless-stride-correct", LtUpdatePolicy::UnlessStrideCorrect},
    {"unless-stride-selected", LtUpdatePolicy::UnlessStrideSelected},
};

const std::vector<std::vector<SuiteStats>> &
results()
{
    static const std::vector<std::vector<SuiteStats>> cached = [] {
        const std::size_t len = defaultTraceLength();
        std::vector<std::vector<SuiteStats>> r;
        for (const auto &policy : policies) {
            PredictorFactory factory = [&policy] {
                HybridConfig config;
                config.ltUpdatePolicy = policy.policy;
                return std::make_unique<HybridPredictor>(config);
            };
            r.push_back(
                sweepPerSuite(policy.label, factory, {}, len));
        }
        return r;
    }();
    return cached;
}

void
BM_LtUpdatePolicy(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    for (std::size_t p = 0; p < std::size(policies); ++p) {
        state.counters[policies[p].label] =
            results()[p].back().stats.predictionRate();
    }
}
BENCHMARK(BM_LtUpdatePolicy)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
printResults()
{
    const auto &r = results();
    Table table;
    table.row({"suite", "always", "unless-correct", "unless-selected"});
    const std::size_t rows = r.front().size();
    for (std::size_t i = 0; i < rows; ++i) {
        table.newRow();
        table.cell(r.front()[i].suite);
        for (std::size_t p = 0; p < std::size(policies); ++p)
            table.percent(r[p][i].stats.predictionRate());
    }
    printTable("Section 4.3: hybrid prediction rate per LT update "
               "policy",
               table);
    std::printf("\npaper: 'update always' slightly best on almost all "
                "traces\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return clap::bench::benchMain("lt_update_policy", argc, argv,
                                  printResults);
}
