/**
 * @file
 * Figure 8: distribution of the 2-bit selector states for loads
 * predicted (speculated) by BOTH hybrid components, plus the correct
 * selection rate.
 *
 * Paper reference points: almost 90% of such loads see the selector
 * in one of the two CAP states; the correct-selection rate is ~99.9%
 * ("quite close to perfect").
 */

#include "bench/bench_util.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

const std::vector<SuiteStats> &
results()
{
    static const std::vector<SuiteStats> cached = sweepPerSuite(
        "hybrid", hybridFactory(), {}, defaultTraceLength());
    return cached;
}

void
BM_Fig08_Selector(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    const auto &avg = results().back().stats;
    state.counters["correct_selection"] = avg.correctSelectionRate();
    const double both = static_cast<double>(avg.bothSpec);
    if (avg.bothSpec != 0) {
        state.counters["cap_states"] =
            (avg.selectorState[2] + avg.selectorState[3]) / both;
    }
}
BENCHMARK(BM_Fig08_Selector)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
printResults()
{
    Table table;
    table.row({"suite", "strongStride", "weakStride", "weakCAP",
               "strongCAP", "correct_sel", "both_frac"});
    for (const auto &suite : results()) {
        const auto &s = suite.stats;
        const double both =
            s.bothSpec == 0 ? 1.0 : static_cast<double>(s.bothSpec);
        table.newRow();
        table.cell(suite.suite);
        for (int state = 0; state < 4; ++state)
            table.percent(s.selectorState[state] / both);
        table.percent(s.correctSelectionRate(), 2);
        table.percent(ratio(s.bothSpec, s.spec));
    }
    printTable("Figure 8: selector state distribution (loads "
               "speculated by both components)",
               table);
    std::printf("\npaper: ~90%% of both-predicted loads sit in the two "
                "CAP states; correct selection ~99.9%%; ~80%% of all "
                "speculative accesses are both-predicted\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return clap::bench::benchMain("fig08_selector", argc, argv,
                                  printResults);
}
