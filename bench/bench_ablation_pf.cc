/**
 * @file
 * Ablation for the pollution-free (PF) bits of section 3.5: the
 * stand-alone CAP predictor with PF bits on vs off, overall and on
 * the pollution-heavy suites. The paper gives no figure for this
 * knob; the expectation from the text is that PF bits trade a longer
 * training time for protection of recurring links against irregular
 * and very long sequences, i.e. they should help most where random
 * loads and big arrays coexist with recurring patterns (TPC, W95,
 * MM) and never cost much.
 */

#include "bench/bench_util.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

struct PfResults
{
    std::vector<SuiteStats> with;
    std::vector<SuiteStats> without;
    std::vector<SuiteStats> decoupled;
};

const PfResults &
results()
{
    static const PfResults cached = [] {
        const std::size_t len = defaultTraceLength();
        PfResults r;
        r.with = sweepPerSuite("pf_on", capFactory(), {}, len);
        PredictorFactory no_pf = [] {
            CapPredictorConfig config;
            config.cap.pfBits = 0;
            return std::make_unique<CapPredictor>(config);
        };
        r.without = sweepPerSuite("pf_off", no_pf, {}, len);
        PredictorFactory decoupled_pf = [] {
            CapPredictorConfig config;
            config.cap.pfTableBits = 16;
            return std::make_unique<CapPredictor>(config);
        };
        r.decoupled =
            sweepPerSuite("pf_decoupled", decoupled_pf, {}, len);
        return r;
    }();
    return cached;
}

void
BM_AblationPf(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    state.counters["pf_on_rate"] =
        results().with.back().stats.predictionRate();
    state.counters["pf_off_rate"] =
        results().without.back().stats.predictionRate();
}
BENCHMARK(BM_AblationPf)->Iterations(1)->Unit(benchmark::kMillisecond);

void
printResults()
{
    const auto &r = results();
    Table table;
    table.row({"suite", "pf_on_rate", "pf_off_rate", "pf_decoup_rate",
               "pf_on_acc", "pf_off_acc", "pf_decoup_acc"});
    for (std::size_t i = 0; i < r.with.size(); ++i) {
        table.newRow();
        table.cell(r.with[i].suite);
        table.percent(r.with[i].stats.predictionRate());
        table.percent(r.without[i].stats.predictionRate());
        table.percent(r.decoupled[i].stats.predictionRate());
        table.percent(r.with[i].stats.accuracy());
        table.percent(r.without[i].stats.accuracy());
        table.percent(r.decoupled[i].stats.accuracy());
    }
    printTable("Ablation (section 3.5): CAP PF bits on/off/decoupled",
               table);
    std::printf("\npaper (qualitative): PF bits protect recurring "
                "links from pollution by irregular/long sequences at "
                "the cost of training time\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return clap::bench::benchMain("ablation_pf", argc, argv,
                                  printResults);
}
