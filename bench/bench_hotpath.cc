/**
 * @file
 * Replay-loop throughput harness for the perf work that is not a
 * paper figure: the shared trace store, the ring-buffered pending
 * queue, the single-lookup LoadBuffer handle path, and the
 * struct-of-arrays probe lanes. Each predictor family replays one
 * representative trace per suite (INT, MM, TPC, NT) through
 * runPredictorSim; the harness repeats the whole replay --reps times
 * after --warmup discarded passes and reports min/median/mean ns per
 * load for each predictor.
 *
 * Output split (EXPERIMENTS.md):
 *  - BENCH_hotpath.json (the shared bench JSON) carries only the
 *    deterministic workload table (records/loads per predictor) so
 *    the file stays byte-identical across runs of the same build and
 *    trace budget.
 *  - BENCH_hotpath.perf.json (--perf-out) carries the wall-clock
 *    numbers; scripts/perf_gate.py compares its medians against the
 *    committed BENCH_hotpath.baseline.json in CI.
 *
 * Environment knobs (besides the shared bench/sweep flags):
 *   CLAP_TRACE_INSTS  per-trace instruction budget (suites.hh)
 *
 * Harness-specific flags (stripped before the shared flag layer):
 *   --reps=N      timed replay passes per predictor (default 5)
 *   --warmup=N    discarded leading passes (default 1)
 *   --perf-out=PATH  timing JSON path (default BENCH_hotpath.perf.json)
 *   --no-perf-json   skip writing the timing JSON
 */

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/predictor_sim.hh"
#include "workloads/composer.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

unsigned g_reps = 5;
unsigned g_warmup = 1;
std::string g_perfOut = "BENCH_hotpath.perf.json";
bool g_noPerfJson = false;

/// One representative trace per behavioural family (same mix the
/// serve bench replays).
std::vector<TraceSpec>
representativeSpecs()
{
    std::vector<TraceSpec> specs;
    for (const char *suite : {"INT", "MM", "TPC", "NT"})
        specs.push_back(buildSuite(suite).front());
    return specs;
}

double
medianOf(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    if (n == 0)
        return 0.0;
    return n % 2 == 1 ? values[n / 2]
                      : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

double
meanOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

struct HotpathRow
{
    std::string predictor;
    std::uint64_t records = 0; ///< per pass (deterministic)
    std::uint64_t loads = 0;   ///< per pass (deterministic)
    std::vector<double> repNs; ///< ns/load of each timed pass

    double minNs() const
    {
        return repNs.empty()
            ? 0.0
            : *std::min_element(repNs.begin(), repNs.end());
    }
    double medianNs() const { return medianOf(repNs); }
    double meanNs() const { return meanOf(repNs); }
};

struct HotpathResults
{
    std::vector<HotpathRow> rows;
};

/** One full replay pass (all traces, fresh predictor per trace).
 *  Returns the pass's ns/load and accumulates the workload shape. */
double
replayPass(const PredictorFactory &factory,
           const std::vector<std::shared_ptr<const Trace>> &traces,
           std::uint64_t &records, std::uint64_t &loads)
{
    records = 0;
    loads = 0;
    double elapsed = 0.0;
    for (const auto &trace : traces) {
        auto predictor = factory();
        const auto begin = std::chrono::steady_clock::now();
        const PredictionStats stats =
            runPredictorSim(*trace, *predictor, {});
        const auto end = std::chrono::steady_clock::now();
        records += trace->records().size();
        loads += stats.loads;
        elapsed += std::chrono::duration<double>(end - begin).count();
    }
    return loads == 0 ? 0.0
                      : elapsed * 1e9 / static_cast<double>(loads);
}

HotpathRow
measure(const std::string &name, const PredictorFactory &factory,
        const std::vector<std::shared_ptr<const Trace>> &traces)
{
    HotpathRow row;
    row.predictor = name;
    for (unsigned rep = 0; rep < g_warmup + g_reps; ++rep) {
        std::uint64_t records = 0;
        std::uint64_t loads = 0;
        const double ns = replayPass(factory, traces, records, loads);
        row.records = records;
        row.loads = loads;
        if (rep >= g_warmup)
            row.repNs.push_back(ns);
    }
    return row;
}

const HotpathResults &
results()
{
    static const HotpathResults cached = [] {
        HotpathResults out;
        // Pre-fetch through the store so generation time (shared with
        // every other harness in a batched run) stays out of the
        // replay measurement.
        std::vector<std::shared_ptr<const Trace>> traces;
        for (const auto &spec : representativeSpecs()) {
            traces.push_back(
                globalTraceStore().get(spec, defaultTraceLength()));
        }

        out.rows.push_back(
            measure("last", lastAddressFactory(), traces));
        out.rows.push_back(measure("stride", strideFactory(), traces));
        out.rows.push_back(measure("cap", capFactory(), traces));
        out.rows.push_back(measure("hybrid", hybridFactory(), traces));
        return out;
    }();
    return cached;
}

void
BM_Hotpath(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    double total_median = 0.0;
    for (const HotpathRow &row : results().rows)
        total_median += row.medianNs();
    state.counters["median_ns_per_load_sum"] = total_median;
}
BENCHMARK(BM_Hotpath)->Iterations(1)->Unit(benchmark::kMillisecond);

std::string
perfJson()
{
    char buf[64];
    auto num = [&buf](double value) {
        std::snprintf(buf, sizeof(buf), "%.3f", value);
        return std::string(buf);
    };
    std::string json = "{\n  \"bench\": \"hotpath\",\n";
    json += "  \"reps\": " + std::to_string(g_reps) + ",\n";
    json += "  \"warmup\": " + std::to_string(g_warmup) + ",\n";
    json += "  \"predictors\": [";
    const auto &rows = results().rows;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const HotpathRow &row = rows[i];
        if (i != 0)
            json += ',';
        json += "\n    {\"name\": \"" + jsonEscape(row.predictor) +
            "\", \"records\": " + std::to_string(row.records) +
            ", \"loads\": " + std::to_string(row.loads) +
            ", \"ns_per_load\": {\"min\": " + num(row.minNs()) +
            ", \"median\": " + num(row.medianNs()) +
            ", \"mean\": " + num(row.meanNs()) + "}}";
    }
    json += "\n  ]\n}\n";
    return json;
}

void
printResults()
{
    const HotpathResults &res = results();

    // Deterministic workload-shape table: the only table registered
    // for BENCH_hotpath.json, which must stay byte-identical across
    // runs (fixed build + trace budget).
    Table shape;
    shape.row({"predictor", "records", "loads"});
    for (const HotpathRow &row : res.rows) {
        shape.newRow();
        shape.cell(row.predictor);
        shape.cell(row.records);
        shape.cell(row.loads);
    }
    printTable("Replay workload per predictor (deterministic)", shape);

    // Timing table: stdout only, never registered (run-dependent).
    Table timing;
    timing.row({"predictor", "reps", "min ns/load", "median ns/load",
                "mean ns/load"});
    for (const HotpathRow &row : res.rows) {
        timing.newRow();
        timing.cell(row.predictor);
        timing.cell(static_cast<std::uint64_t>(row.repNs.size()));
        timing.cell(row.minNs(), 1);
        timing.cell(row.medianNs(), 1);
        timing.cell(row.meanNs(), 1);
    }
    std::printf("\n=== Replay-loop ns/load (wall-clock; %u warmup + %u "
                "timed passes; stdout + perf JSON only) ===\n",
                g_warmup, g_reps);
    timing.print(std::cout);
    std::fflush(stdout);

    if (!g_noPerfJson) {
        if (auto written = writeFileAtomic(g_perfOut, perfJson());
            !written) {
            std::fprintf(stderr, "cannot write %s: %s\n",
                         g_perfOut.c_str(),
                         written.error().str().c_str());
            std::exit(1);
        }
        std::printf("\nperf JSON: wrote %s (gated by "
                    "scripts/perf_gate.py against "
                    "BENCH_hotpath.baseline.json)\n",
                    g_perfOut.c_str());
    }
}

/** Strip the harness-specific flags before the shared flag layer
 *  (anything it does not recognise is handed to google-benchmark,
 *  which rejects unknown flags). */
void
parseHotpathFlags(int &argc, char **argv)
{
    auto bail = [](const std::string &message) {
        std::fprintf(stderr, "bench_hotpath flags: %s\n",
                     message.c_str());
        std::exit(2);
    };
    auto parseUint = [&bail](const std::string &flag,
                             const std::string &text) -> unsigned {
        try {
            std::size_t end = 0;
            const unsigned long value = std::stoul(text, &end);
            if (end != text.size())
                throw std::invalid_argument(text);
            return static_cast<unsigned>(value);
        } catch (const std::exception &) {
            bail("bad value '" + text + "' for " + flag);
            return 0; // unreachable
        }
    };

    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto valueOf = [&](const std::string &prefix,
                           std::string &value) {
            if (arg.compare(0, prefix.size(), prefix) != 0)
                return false;
            value = arg.substr(prefix.size());
            return true;
        };
        std::string value;
        if (valueOf("--reps=", value)) {
            g_reps = parseUint("--reps", value);
            if (g_reps == 0)
                bail("--reps must be >= 1");
        } else if (valueOf("--warmup=", value)) {
            g_warmup = parseUint("--warmup", value);
        } else if (valueOf("--perf-out=", value)) {
            g_perfOut = value;
        } else if (arg == "--no-perf-json") {
            g_noPerfJson = true;
        } else {
            argv[out++] = argv[i]; // not ours: keep
            continue;
        }
    }
    argc = out;
    argv[argc] = nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    parseHotpathFlags(argc, argv);
    return clap::bench::benchMain("hotpath", argc, argv, printResults);
}
