/**
 * @file
 * Replay-loop throughput harness for the perf work that is not a
 * paper figure: the shared trace store, the ring-buffered pending
 * queue, and the single-lookup LoadBuffer handle path. Each predictor
 * family replays one representative trace per suite (INT, MM, TPC,
 * NT) through runPredictorSim and the harness reports records/sec and
 * ns/load, per predictor and in aggregate.
 *
 * Throughput is informational, not gating: CI's perf-smoke job only
 * asserts that the binary runs and BENCH_hotpath.json is valid JSON.
 * Like bench_serve's load table, the timing cells are wall-clock and
 * inherently run-dependent; the JSON is still written atomically via
 * the shared machinery.
 *
 * Environment knobs (besides the shared bench/sweep flags):
 *   CLAP_TRACE_INSTS  per-trace instruction budget (suites.hh)
 */

#include <chrono>
#include <memory>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/predictor_sim.hh"
#include "workloads/composer.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

/// One representative trace per behavioural family (same mix the
/// serve bench replays).
std::vector<TraceSpec>
representativeSpecs()
{
    std::vector<TraceSpec> specs;
    for (const char *suite : {"INT", "MM", "TPC", "NT"})
        specs.push_back(buildSuite(suite).front());
    return specs;
}

struct HotpathRow
{
    std::string predictor;
    std::uint64_t records = 0;
    std::uint64_t loads = 0;
    double elapsedSec = 0.0;

    double
    recordsPerSec() const
    {
        return elapsedSec <= 0.0
            ? 0.0
            : static_cast<double>(records) / elapsedSec;
    }

    double
    nsPerLoad() const
    {
        return loads == 0
            ? 0.0
            : elapsedSec * 1e9 / static_cast<double>(loads);
    }
};

struct HotpathResults
{
    std::vector<HotpathRow> rows;
    HotpathRow total;
};

HotpathRow
measure(const std::string &name, const PredictorFactory &factory,
        const std::vector<std::shared_ptr<const Trace>> &traces)
{
    HotpathRow row;
    row.predictor = name;
    for (const auto &trace : traces) {
        auto predictor = factory();
        const auto begin = std::chrono::steady_clock::now();
        const PredictionStats stats =
            runPredictorSim(*trace, *predictor, {});
        const auto end = std::chrono::steady_clock::now();
        row.records += trace->records().size();
        row.loads += stats.loads;
        row.elapsedSec +=
            std::chrono::duration<double>(end - begin).count();
    }
    return row;
}

const HotpathResults &
results()
{
    static const HotpathResults cached = [] {
        HotpathResults out;
        // Pre-fetch through the store so generation time (shared with
        // every other harness in a batched run) stays out of the
        // replay measurement.
        std::vector<std::shared_ptr<const Trace>> traces;
        for (const auto &spec : representativeSpecs()) {
            traces.push_back(
                globalTraceStore().get(spec, defaultTraceLength()));
        }

        out.rows.push_back(
            measure("last", lastAddressFactory(), traces));
        out.rows.push_back(measure("stride", strideFactory(), traces));
        out.rows.push_back(measure("cap", capFactory(), traces));
        out.rows.push_back(measure("hybrid", hybridFactory(), traces));

        out.total.predictor = "total";
        for (const HotpathRow &row : out.rows) {
            out.total.records += row.records;
            out.total.loads += row.loads;
            out.total.elapsedSec += row.elapsedSec;
        }
        return out;
    }();
    return cached;
}

void
BM_Hotpath(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    state.counters["records_per_sec"] = results().total.recordsPerSec();
    state.counters["ns_per_load"] = results().total.nsPerLoad();
}
BENCHMARK(BM_Hotpath)->Iterations(1)->Unit(benchmark::kMillisecond);

void
printResults()
{
    const HotpathResults &res = results();
    Table table;
    table.row({"predictor", "records", "loads", "ms", "Mrec/s",
               "ns/load"});
    auto emit = [&table](const HotpathRow &row) {
        table.newRow();
        table.cell(row.predictor);
        table.cell(row.records);
        table.cell(row.loads);
        table.cell(row.elapsedSec * 1e3, 1);
        table.cell(row.recordsPerSec() / 1e6, 2);
        table.cell(row.nsPerLoad(), 1);
    };
    for (const HotpathRow &row : res.rows)
        emit(row);
    emit(res.total);
    printTable("Replay-loop throughput per predictor "
               "(wall-clock; run-dependent)",
               table);
    std::printf("\nthroughput is informational; CI only checks that "
                "this harness runs and emits valid JSON\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return clap::bench::benchMain("hotpath", argc, argv, printResults);
}
