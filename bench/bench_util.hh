/**
 * @file
 * Shared helpers for the benchmark harnesses. Each bench binary
 * reproduces one table/figure of the paper: it times the simulation
 * with google-benchmark (single iteration — these are experiment
 * harnesses, not microbenchmarks) and prints a paper-style result
 * table afterwards, annotated with the values the paper reports.
 */

#ifndef CLAP_BENCH_BENCH_UTIL_HH
#define CLAP_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "core/cap_predictor.hh"
#include "core/config.hh"
#include "core/hybrid_predictor.hh"
#include "core/last_address_predictor.hh"
#include "core/stride_predictor.hh"
#include "sim/experiment.hh"
#include "util/table.hh"

namespace clap::bench
{

/** Factory for the paper's baseline enhanced-stride predictor. */
inline PredictorFactory
strideFactory(bool pipelined = false)
{
    return [pipelined] {
        StridePredictorConfig config;
        config.pipelined = pipelined;
        return std::make_unique<StridePredictor>(config);
    };
}

/** Factory for the baseline stand-alone CAP predictor. */
inline PredictorFactory
capFactory(bool pipelined = false)
{
    return [pipelined] {
        CapPredictorConfig config;
        config.pipelined = pipelined;
        return std::make_unique<CapPredictor>(config);
    };
}

/** Factory for the baseline hybrid CAP/stride predictor. */
inline PredictorFactory
hybridFactory(bool pipelined = false)
{
    return [pipelined] {
        HybridConfig config;
        config.pipelined = pipelined;
        return std::make_unique<HybridPredictor>(config);
    };
}

/** Factory for the prior-art last-address predictor. */
inline PredictorFactory
lastAddressFactory()
{
    return [] {
        return std::make_unique<LastAddressPredictor>(
            LastAddressConfig{});
    };
}

/** Print a titled table to stdout with a blank line around it. */
inline void
printTable(const std::string &title, const Table &table)
{
    std::printf("\n=== %s ===\n", title.c_str());
    table.print(std::cout);
    std::fflush(stdout);
}

} // namespace clap::bench

#endif // CLAP_BENCH_BENCH_UTIL_HH
