/**
 * @file
 * Shared helpers for the benchmark harnesses. Each bench binary
 * reproduces one table/figure of the paper: it times the simulation
 * with google-benchmark (single iteration — these are experiment
 * harnesses, not microbenchmarks) and prints a paper-style result
 * table afterwards, annotated with the values the paper reports.
 *
 * All harnesses route their sweeps through the resilient runner
 * (runner/sweep.hh) and share a flag layer on top of the
 * google-benchmark flags:
 *
 *   --jobs=N        worker threads (default 1 = serial order)
 *   --timeout-ms=N  per-job wall-clock budget (0 = no watchdog)
 *   --retries=N     retry budget for transient failures (default 2)
 *   --backoff-ms=N  retry backoff base; retry r sleeps base << r
 *   --journal=PATH  checkpoint completed jobs to PATH (JSONL+CRC)
 *   --resume        replay the journal, re-run only missing jobs
 *                   (default journal: BENCH_<name>.journal)
 *   --out=PATH      result JSON path (default BENCH_<name>.json)
 *   --no-json       skip writing the result JSON
 *
 * Results additionally land in BENCH_<name>.json (written atomically
 * via temp-file + rename): every printed table plus any failed jobs.
 * The JSON contains no run-dependent counters, so an interrupted +
 * resumed sweep produces a byte-identical file to an uninterrupted
 * one.
 */

#ifndef CLAP_BENCH_BENCH_UTIL_HH
#define CLAP_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/cap_predictor.hh"
#include "core/config.hh"
#include "obs/trace_events.hh"
#include "core/hybrid_predictor.hh"
#include "core/last_address_predictor.hh"
#include "core/stride_predictor.hh"
#include "runner/sweep.hh"
#include "sim/experiment.hh"
#include "trace/trace_store.hh"
#include "util/atomic_file.hh"
#include "util/json.hh"
#include "util/table.hh"

namespace clap::bench
{

/** Factory for the paper's baseline enhanced-stride predictor. */
inline PredictorFactory
strideFactory(bool pipelined = false)
{
    return [pipelined] {
        StridePredictorConfig config;
        config.pipelined = pipelined;
        return std::make_unique<StridePredictor>(config);
    };
}

/** Factory for the baseline stand-alone CAP predictor. */
inline PredictorFactory
capFactory(bool pipelined = false)
{
    return [pipelined] {
        CapPredictorConfig config;
        config.pipelined = pipelined;
        return std::make_unique<CapPredictor>(config);
    };
}

/** Factory for the baseline hybrid CAP/stride predictor. */
inline PredictorFactory
hybridFactory(bool pipelined = false)
{
    return [pipelined] {
        HybridConfig config;
        config.pipelined = pipelined;
        return std::make_unique<HybridPredictor>(config);
    };
}

/** Factory for the prior-art last-address predictor. */
inline PredictorFactory
lastAddressFactory()
{
    return [] {
        return std::make_unique<LastAddressPredictor>(
            LastAddressConfig{});
    };
}

/** Parsed sweep flags (see file header). */
struct SweepOptions
{
    unsigned jobs = 1;
    std::uint64_t timeoutMs = 0;
    unsigned retries = 2;
    std::uint64_t backoffMs = 10;
    std::string journalPath; ///< resolved; empty = no checkpointing
    bool resume = false;
    std::string outPath; ///< resolved result JSON path
    bool noJson = false;
};

/** Process-wide bench harness state (one bench binary = one state). */
struct BenchState
{
    std::string name; ///< e.g. "fig05_predictors"
    SweepOptions options;

    /// Printed tables in print order (title, formatted cells).
    std::vector<std::pair<std::string, Table>> tables;

    /// Jobs that ended in a structured error, across all sweeps.
    struct Failure
    {
        std::string key;
        std::string error;
    };
    std::vector<Failure> failures;

    RunnerCounters counters; ///< accumulated over all sweeps
    std::size_t journalBadLines = 0;

    /// Trace-store counters accumulated over all sweeps. Printed in
    /// the stdout summary only — the result JSON must stay free of
    /// run-dependent counters (journal hits skip generations, so a
    /// resumed run reports different hit/miss totals).
    TraceStoreStats traceStore;

    static BenchState &
    instance()
    {
        static BenchState state;
        return state;
    }
};

/** Runner built from the bench flags. Journalling benches always run
 *  the runner in resume mode: benchMain() truncates the journal once
 *  at startup for fresh runs, so the several sweeps of one binary
 *  (e.g. the stride and hybrid columns of a figure) append to — and
 *  on --resume replay from — a single shared journal. */
inline SweepRunner
makeSweepRunner()
{
    const SweepOptions &options = BenchState::instance().options;
    RunnerConfig config;
    config.threads = options.jobs;
    config.timeoutMs = options.timeoutMs;
    config.maxRetries = options.retries;
    config.backoffBaseMs = options.backoffMs;
    config.journalPath = options.journalPath;
    config.resume = !options.journalPath.empty();
    return SweepRunner(config);
}

/** Fold one sweep's report into the bench state. */
inline void
recordSweepReport(const SweepReport &report)
{
    BenchState &state = BenchState::instance();
    if (!report.status) {
        std::fprintf(stderr, "sweep error: %s\n",
                     report.status.error().str().c_str());
        state.failures.push_back(
            {"(sweep)", report.status.error().str()});
    }
    for (const auto &outcome : report.outcomes) {
        if (!outcome.ok)
            state.failures.push_back(
                {outcome.key, outcome.error.str()});
    }
    state.counters.executed += report.counters.executed;
    state.counters.journalHits += report.counters.journalHits;
    state.counters.retries += report.counters.retries;
    state.counters.timeouts += report.counters.timeouts;
    state.counters.failures += report.counters.failures;
    state.counters.backoffs += report.counters.backoffs;
    state.counters.backoffMs += report.counters.backoffMs;
    state.journalBadLines += report.journalBadLines;
    state.traceStore.hits += report.traceStore.hits;
    state.traceStore.misses += report.traceStore.misses;
    state.traceStore.evictions += report.traceStore.evictions;
    state.traceStore.bytesGenerated += report.traceStore.bytesGenerated;
    state.traceStore.bytesCached = report.traceStore.bytesCached;
    state.traceStore.bytesPeak = report.traceStore.bytesPeak;
}

/** Resilient runPerTrace under the bench flags. */
inline std::vector<TraceStatsResult>
sweepPerTrace(const std::string &label,
              const std::vector<TraceSpec> &specs,
              const PredictorFactory &factory,
              const PredictorSimConfig &sim_config, std::size_t len)
{
    auto output = runPerTraceResilient(label, specs, factory,
                                       sim_config, len,
                                       makeSweepRunner());
    recordSweepReport(output.report);
    return std::move(output.results);
}

/** Resilient runPerSuite under the bench flags. */
inline std::vector<SuiteStats>
sweepPerSuite(const std::string &label, const PredictorFactory &factory,
              const PredictorSimConfig &sim_config, std::size_t len)
{
    return aggregateBySuite(
        sweepPerTrace(label, buildCatalog(), factory, sim_config, len));
}

/** Resilient runSpeedup under the bench flags. */
inline std::vector<SpeedupResult>
sweepSpeedup(const std::string &label,
             const std::vector<TraceSpec> &specs,
             const PredictorFactory &factory,
             const TimingConfig &config, std::size_t len)
{
    auto output = runSpeedupResilient(label, specs, factory, config,
                                      len, makeSweepRunner());
    recordSweepReport(output.report);
    return std::move(output.results);
}

/** Custom job batch (fault sweeps etc.) under the bench flags. */
inline SweepReport
runSweepJobs(const std::vector<SweepJob> &jobs)
{
    SweepReport report = makeSweepRunner().run(jobs);
    recordSweepReport(report);
    return report;
}

/** Print a titled table to stdout and register it for the JSON. */
inline void
printTable(const std::string &title, const Table &table)
{
    std::printf("\n=== %s ===\n", title.c_str());
    table.print(std::cout);
    std::fflush(stdout);
    BenchState::instance().tables.emplace_back(title, table);
}

/** Serialise the bench state to its result JSON (deterministic). */
inline std::string
benchJson()
{
    const BenchState &state = BenchState::instance();
    std::string json = "{\n  \"bench\": \"";
    json += jsonEscape(state.name);
    json += "\",\n  \"tables\": [";
    for (std::size_t t = 0; t < state.tables.size(); ++t) {
        if (t != 0)
            json += ',';
        json += "\n    {\"title\": \"";
        json += jsonEscape(state.tables[t].first);
        json += "\", \"rows\": [";
        const auto &rows = state.tables[t].second.rows();
        for (std::size_t r = 0; r < rows.size(); ++r) {
            if (r != 0)
                json += ',';
            json += "\n      [";
            for (std::size_t c = 0; c < rows[r].size(); ++c) {
                if (c != 0)
                    json += ", ";
                json += '"';
                json += jsonEscape(rows[r][c]);
                json += '"';
            }
            json += ']';
        }
        json += "\n    ]}";
    }
    json += "\n  ],\n  \"failedJobs\": [";
    for (std::size_t f = 0; f < state.failures.size(); ++f) {
        if (f != 0)
            json += ',';
        json += "\n    {\"key\": \"";
        json += jsonEscape(state.failures[f].key);
        json += "\", \"error\": \"";
        json += jsonEscape(state.failures[f].error);
        json += "\"}";
    }
    json += "\n  ]\n}\n";
    return json;
}

/** Parse and strip the bench sweep flags from argv; exits on error. */
inline void
parseSweepFlags(int &argc, char **argv, SweepOptions &options)
{
    auto bail = [](const std::string &message) {
        std::fprintf(stderr, "bench flags: %s\n", message.c_str());
        std::exit(2);
    };
    auto parseUint = [&bail](const std::string &flag,
                             const std::string &text) -> std::uint64_t {
        try {
            std::size_t end = 0;
            const unsigned long long value = std::stoull(text, &end);
            if (end != text.size())
                throw std::invalid_argument(text);
            return value;
        } catch (const std::exception &) {
            bail("bad value '" + text + "' for " + flag);
            return 0; // unreachable
        }
    };

    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto valueOf = [&](const std::string &prefix,
                           std::string &value) {
            if (arg.compare(0, prefix.size(), prefix) != 0)
                return false;
            value = arg.substr(prefix.size());
            return true;
        };
        std::string value;
        if (valueOf("--jobs=", value)) {
            options.jobs = static_cast<unsigned>(
                parseUint("--jobs", value));
            if (options.jobs == 0)
                bail("--jobs must be >= 1");
        } else if (valueOf("--timeout-ms=", value)) {
            options.timeoutMs = parseUint("--timeout-ms", value);
        } else if (valueOf("--retries=", value)) {
            options.retries = static_cast<unsigned>(
                parseUint("--retries", value));
        } else if (valueOf("--backoff-ms=", value)) {
            options.backoffMs = parseUint("--backoff-ms", value);
        } else if (valueOf("--journal=", value)) {
            options.journalPath = value;
        } else if (arg == "--resume") {
            options.resume = true;
        } else if (valueOf("--out=", value)) {
            options.outPath = value;
        } else if (arg == "--no-json") {
            options.noJson = true;
        } else {
            argv[out++] = argv[i]; // not ours: keep for benchmark
            continue;
        }
    }
    argc = out;
    argv[argc] = nullptr;
}

/**
 * Shared main() of every bench binary: parse the sweep flags, run the
 * google-benchmark harness (which triggers the sweeps), print the
 * figure via @p printFn, then write the result JSON atomically.
 */
inline int
benchMain(const std::string &name, int argc, char **argv,
          const std::function<void()> &printFn)
{
    BenchState &state = BenchState::instance();
    state.name = name;
    parseSweepFlags(argc, argv, state.options);

    // Resolve defaults that depend on the bench name.
    if (state.options.resume && state.options.journalPath.empty())
        state.options.journalPath = "BENCH_" + name + ".journal";
    if (state.options.outPath.empty())
        state.options.outPath = "BENCH_" + name + ".json";

    // Fresh journalled run: truncate once here, then every sweep of
    // this process appends (the runner itself always resumes).
    if (!state.options.journalPath.empty() && !state.options.resume) {
        std::ofstream truncate(state.options.journalPath,
                               std::ios::trunc);
        if (!truncate) {
            std::fprintf(stderr, "cannot create journal %s\n",
                         state.options.journalPath.c_str());
            return 1;
        }
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFn();

    const RunnerCounters &counters = state.counters;
    if (counters.executed != 0 || counters.journalHits != 0) {
        std::printf("\nsweep: %llu executed, %llu from journal, "
                    "%llu retries, %llu timeouts, %llu failed",
                    static_cast<unsigned long long>(counters.executed),
                    static_cast<unsigned long long>(
                        counters.journalHits),
                    static_cast<unsigned long long>(counters.retries),
                    static_cast<unsigned long long>(counters.timeouts),
                    static_cast<unsigned long long>(counters.failures));
        if (counters.backoffs != 0)
            std::printf(", %llu backoffs (%llu ms slept)",
                        static_cast<unsigned long long>(
                            counters.backoffs),
                        static_cast<unsigned long long>(
                            counters.backoffMs));
        if (state.journalBadLines != 0)
            std::printf(", %llu journal lines salvaged",
                        static_cast<unsigned long long>(
                            state.journalBadLines));
        std::printf("\n");
    }
    if (state.traceStore.hits != 0 || state.traceStore.misses != 0) {
        const TraceStoreStats &ts = state.traceStore;
        std::printf("trace store: %llu hits, %llu generated "
                    "(%.1f MiB), %llu evicted, peak %.1f MiB, "
                    "%.1f MiB resident\n",
                    static_cast<unsigned long long>(ts.hits),
                    static_cast<unsigned long long>(ts.misses),
                    static_cast<double>(ts.bytesGenerated) /
                        (1024.0 * 1024.0),
                    static_cast<unsigned long long>(ts.evictions),
                    static_cast<double>(ts.bytesPeak) /
                        (1024.0 * 1024.0),
                    static_cast<double>(ts.bytesCached) /
                        (1024.0 * 1024.0));
    }
    for (const auto &failure : state.failures)
        std::fprintf(stderr, "failed job %s: %s\n",
                     failure.key.c_str(), failure.error.c_str());

    if (!state.options.noJson) {
        if (auto written =
                writeFileAtomic(state.options.outPath, benchJson());
            !written) {
            std::fprintf(stderr, "cannot write %s: %s\n",
                         state.options.outPath.c_str(),
                         written.error().str().c_str());
            return 1;
        }
    }

    // Spans flush again at exit; flushing here surfaces write errors
    // while we can still report them, and prints the path once.
    if (obs::traceEventsEnabled()) {
        if (auto flushed = obs::flushTraceEvents(); !flushed) {
            std::fprintf(stderr, "cannot write trace events: %s\n",
                         flushed.error().str().c_str());
            return 1;
        }
        std::printf("trace events: wrote %s\n",
                    obs::traceEventsPath().c_str());
    }
    return state.failures.empty() ? 0 : 3;
}

} // namespace clap::bench

#endif // CLAP_BENCH_BENCH_UTIL_HH
