/**
 * @file
 * Fault-resilience sweep: soft-error injection rate (faults per
 * million dynamic loads) versus prediction coverage and misprediction
 * rate, for a naive CAP predictor (no LT tags, no path indications,
 * no PF bits) against the paper's enhanced baseline (8-bit tags,
 * 4 path bits, 4 PF bits).
 *
 * The paper's robustness argument (all predictor state is
 * speculative, so corruption costs performance, never correctness)
 * predicts two curves: coverage degrades smoothly with the fault
 * rate, and the enhanced confidence mechanisms shield accuracy — a
 * flipped link or history bit usually fails the tag match or the
 * confidence threshold instead of feeding a wrong address to the
 * pipeline. The naive configuration speculates on whatever the
 * corrupted LT entry holds, so its misprediction rate climbs faster.
 */

#include <vector>

#include "bench/bench_util.hh"
#include "sim/fault_injector.hh"
#include "sim/predictor_sim.hh"
#include "workloads/composer.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

/// Faults per million loads; 0 is the healthy baseline.
constexpr double rates[] = {0, 100, 500, 1000, 2500, 5000, 10000};

struct SweepPoint
{
    PredictionStats naive;
    PredictionStats enhanced;
    std::uint64_t naiveFaults = 0;
    std::uint64_t enhancedFaults = 0;
};

CapPredictorConfig
naiveConfig()
{
    CapPredictorConfig config;
    config.cap.ltTagBits = 0;
    config.cap.pathBits = 0;
    config.cap.pfBits = 0;
    return config;
}

/// One trace per behavioural family keeps the sweep representative
/// without paying for the full 45-trace catalog at every rate.
std::vector<TraceSpec>
sweepSpecs()
{
    std::vector<TraceSpec> specs;
    for (const char *suite : {"INT", "MM", "TPC", "NT"})
        specs.push_back(buildSuite(suite).front());
    return specs;
}

/**
 * One fault-injection cell as a self-contained sweep job. The
 * injector seed is salted with the retry attempt: a job failing its
 * post-run structural audit (CorruptedState, retryable) draws a fresh
 * fault pattern on the retry instead of deterministically re-failing.
 */
SweepJob
faultJob(const std::string &key, const TraceSpec &spec,
         const CapPredictorConfig &config, double rate)
{
    SweepJob job;
    job.key = key;
    job.run = [spec, config,
               rate](const JobContext &ctx) -> Expected<JobResult> {
        const Trace trace = generateTrace(spec, defaultTraceLength());
        CapPredictor predictor{config};
        FaultInjectorConfig fault_config;
        fault_config.faultsPerMillionLoads = rate;
        fault_config.seed += ctx.attempt;
        FaultInjector injector(fault_config);
        injector.attach(predictor);

        PredictorSimConfig sim;
        sim.faultInjector = &injector;
        sim.cancel = ctx.cancel;
        JobResult result;
        result.stats = runPredictorSim(trace, predictor, sim);
        result.hasStats = true;
        result.faults = injector.counts().total();
        if (auto audit = predictor.audit(); !audit) {
            return std::move(audit.error())
                .withContext("after fault injection on '" +
                             spec.name + "'");
        }
        return result;
    };
    return job;
}

const std::vector<SweepPoint> &
results()
{
    static const std::vector<SweepPoint> cached = [] {
        const std::vector<TraceSpec> specs = sweepSpecs();
        std::vector<SweepJob> jobs;
        for (std::size_t i = 0; i < std::size(rates); ++i) {
            const std::string prefix =
                "rate" + std::to_string(static_cast<unsigned long long>(
                             rates[i]));
            for (const auto &spec : specs) {
                jobs.push_back(faultJob(
                    prefix + "/naive/" + spec.name, spec,
                    naiveConfig(), rates[i]));
                jobs.push_back(faultJob(
                    prefix + "/enhanced/" + spec.name, spec,
                    CapPredictorConfig{}, rates[i]));
            }
        }

        const SweepReport report = runSweepJobs(jobs);

        // Fold outcomes back into per-rate points; failed cells
        // contribute nothing (graceful degradation) and appear in the
        // harness failure list instead.
        std::vector<SweepPoint> points(std::size(rates));
        const std::size_t per_rate = 2 * specs.size();
        for (std::size_t j = 0; j < report.outcomes.size(); ++j) {
            const JobOutcome &outcome = report.outcomes[j];
            if (!outcome.ok)
                continue;
            SweepPoint &point = points[j / per_rate];
            const bool naive = (j % 2) == 0;
            if (naive) {
                point.naive.merge(outcome.result.stats);
                point.naiveFaults += outcome.result.faults;
            } else {
                point.enhanced.merge(outcome.result.stats);
                point.enhancedFaults += outcome.result.faults;
            }
        }
        return points;
    }();
    return cached;
}

void
BM_FaultResilience(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    const SweepPoint &worst = results().back();
    state.counters["naive_mispred_10k"] =
        worst.naive.mispredictionRate();
    state.counters["enhanced_mispred_10k"] =
        worst.enhanced.mispredictionRate();
}
BENCHMARK(BM_FaultResilience)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
printResults()
{
    Table table;
    table.row({"faults/M", "injected", "naive_cover", "naive_mispred",
               "enh_cover", "enh_mispred"});
    for (std::size_t i = 0; i < std::size(rates); ++i) {
        const SweepPoint &point = results()[i];
        table.newRow();
        table.cell(std::to_string(
            static_cast<unsigned long long>(rates[i])));
        table.cell(std::to_string(point.naiveFaults +
                                  point.enhancedFaults));
        table.percent(point.naive.predictionRate(), 2);
        table.percent(point.naive.mispredictionRate(), 3);
        table.percent(point.enhanced.predictionRate(), 2);
        table.percent(point.enhanced.mispredictionRate(), 3);
    }
    printTable("Fault resilience: coverage/misprediction vs injected "
               "soft-error rate (naive CAP vs enhanced confidence)",
               table);
    std::printf("\nexpected: coverage decays smoothly with the fault "
                "rate; the enhanced config (tags + path + PF) holds a "
                "lower misprediction rate at every injection level\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return clap::bench::benchMain("fault_resilience", argc, argv,
                                  printResults);
}
