/**
 * @file
 * Fault-resilience sweep: soft-error injection rate (faults per
 * million dynamic loads) versus prediction coverage and misprediction
 * rate, for a naive CAP predictor (no LT tags, no path indications,
 * no PF bits) against the paper's enhanced baseline (8-bit tags,
 * 4 path bits, 4 PF bits).
 *
 * The paper's robustness argument (all predictor state is
 * speculative, so corruption costs performance, never correctness)
 * predicts two curves: coverage degrades smoothly with the fault
 * rate, and the enhanced confidence mechanisms shield accuracy — a
 * flipped link or history bit usually fails the tag match or the
 * confidence threshold instead of feeding a wrong address to the
 * pipeline. The naive configuration speculates on whatever the
 * corrupted LT entry holds, so its misprediction rate climbs faster.
 */

#include <vector>

#include "bench/bench_util.hh"
#include "sim/fault_injector.hh"
#include "sim/predictor_sim.hh"
#include "workloads/composer.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

/// Faults per million loads; 0 is the healthy baseline.
constexpr double rates[] = {0, 100, 500, 1000, 2500, 5000, 10000};

struct SweepPoint
{
    PredictionStats naive;
    PredictionStats enhanced;
    std::uint64_t naiveFaults = 0;
    std::uint64_t enhancedFaults = 0;
};

CapPredictorConfig
naiveConfig()
{
    CapPredictorConfig config;
    config.cap.ltTagBits = 0;
    config.cap.pathBits = 0;
    config.cap.pfBits = 0;
    return config;
}

/// One trace per behavioural family keeps the sweep representative
/// without paying for the full 45-trace catalog at every rate.
std::vector<Trace>
sweepTraces()
{
    std::vector<Trace> traces;
    const std::size_t len = defaultTraceLength();
    for (const char *suite : {"INT", "MM", "TPC", "NT"})
        traces.push_back(generateTrace(buildSuite(suite).front(), len));
    return traces;
}

PredictionStats
runOne(const Trace &trace, const CapPredictorConfig &config, double rate,
       std::uint64_t *faults)
{
    CapPredictor predictor{config};
    FaultInjectorConfig fault_config;
    fault_config.faultsPerMillionLoads = rate;
    FaultInjector injector(fault_config);
    injector.attach(predictor);

    PredictorSimConfig sim;
    sim.faultInjector = &injector;
    const PredictionStats stats = runPredictorSim(trace, predictor, sim);
    *faults += injector.counts().total();
    return stats;
}

const std::vector<SweepPoint> &
results()
{
    static const std::vector<SweepPoint> cached = [] {
        const std::vector<Trace> traces = sweepTraces();
        std::vector<SweepPoint> points;
        for (const double rate : rates) {
            SweepPoint point;
            for (const Trace &trace : traces) {
                point.naive.merge(runOne(trace, naiveConfig(), rate,
                                         &point.naiveFaults));
                point.enhanced.merge(runOne(trace, CapPredictorConfig{},
                                            rate,
                                            &point.enhancedFaults));
            }
            points.push_back(point);
        }
        return points;
    }();
    return cached;
}

void
BM_FaultResilience(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    const SweepPoint &worst = results().back();
    state.counters["naive_mispred_10k"] =
        worst.naive.mispredictionRate();
    state.counters["enhanced_mispred_10k"] =
        worst.enhanced.mispredictionRate();
}
BENCHMARK(BM_FaultResilience)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
printResults()
{
    Table table;
    table.row({"faults/M", "injected", "naive_cover", "naive_mispred",
               "enh_cover", "enh_mispred"});
    for (std::size_t i = 0; i < std::size(rates); ++i) {
        const SweepPoint &point = results()[i];
        table.newRow();
        table.cell(std::to_string(
            static_cast<unsigned long long>(rates[i])));
        table.cell(std::to_string(point.naiveFaults +
                                  point.enhancedFaults));
        table.percent(point.naive.predictionRate(), 2);
        table.percent(point.naive.mispredictionRate(), 3);
        table.percent(point.enhanced.predictionRate(), 2);
        table.percent(point.enhanced.mispredictionRate(), 3);
    }
    printTable("Fault resilience: coverage/misprediction vs injected "
               "soft-error rate (naive CAP vs enhanced confidence)",
               table);
    std::printf("\nexpected: coverage decays smoothly with the fault "
                "rate; the enhanced config (tags + path + PF) holds a "
                "lower misprediction rate at every injection level\n");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printResults();
    return 0;
}
