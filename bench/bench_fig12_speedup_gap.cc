/**
 * @file
 * Figure 12: per-suite speedup of the enhanced stride and hybrid
 * predictors for the immediate-update model vs a prediction gap of 8
 * cycles, on the out-of-order timing model.
 *
 * Paper reference points: the speedup decreases for most suites but
 * remains significant — hybrid average drops from ~21% (immediate)
 * to ~14.1% at gap 8, staying ~3.9% above the enhanced stride.
 */

#include <map>

#include "bench/bench_util.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

struct Fig12Results
{
    // [predictor][gapIdx] -> per-trace speedups
    std::vector<SpeedupResult> strideImm;
    std::vector<SpeedupResult> strideGap;
    std::vector<SpeedupResult> hybridImm;
    std::vector<SpeedupResult> hybridGap;
};

const Fig12Results &
results()
{
    static const Fig12Results cached = [] {
        const std::size_t len = defaultTraceLength();
        const auto specs = buildCatalog();
        TimingConfig immediate;
        TimingConfig gapped;
        gapped.predictorGap.gapCycles = 8;

        Fig12Results r;
        r.strideImm = sweepSpeedup("stride_imm", specs,
                                   strideFactory(false), immediate,
                                   len);
        r.strideGap = sweepSpeedup("stride_gap8", specs,
                                   strideFactory(true), gapped, len);
        r.hybridImm = sweepSpeedup("hybrid_imm", specs,
                                   hybridFactory(false), immediate,
                                   len);
        r.hybridGap = sweepSpeedup("hybrid_gap8", specs,
                                   hybridFactory(true), gapped, len);
        return r;
    }();
    return cached;
}

std::map<std::string, double>
perSuiteGeomean(const std::vector<SpeedupResult> &rows)
{
    std::map<std::string, std::vector<double>> per_suite;
    std::vector<double> all;
    for (const auto &row : rows) {
        per_suite[row.suite].push_back(row.speedup());
        all.push_back(row.speedup());
    }
    std::map<std::string, double> out;
    for (const auto &[suite, values] : per_suite)
        out[suite] = geomean(values);
    out["Average"] = geomean(all);
    return out;
}

void
BM_Fig12_SpeedupGap(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    state.counters["hybrid_imm"] =
        perSuiteGeomean(results().hybridImm)["Average"];
    state.counters["hybrid_gap8"] =
        perSuiteGeomean(results().hybridGap)["Average"];
}
BENCHMARK(BM_Fig12_SpeedupGap)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
printResults()
{
    const auto stride_imm = perSuiteGeomean(results().strideImm);
    const auto stride_gap = perSuiteGeomean(results().strideGap);
    const auto hybrid_imm = perSuiteGeomean(results().hybridImm);
    const auto hybrid_gap = perSuiteGeomean(results().hybridGap);

    Table table;
    table.row({"suite", "stride_imm", "stride_gap8", "hybrid_imm",
               "hybrid_gap8"});
    auto add_row = [&](const std::string &suite) {
        table.newRow();
        table.cell(suite);
        table.cell(stride_imm.at(suite), 3);
        table.cell(stride_gap.at(suite), 3);
        table.cell(hybrid_imm.at(suite), 3);
        table.cell(hybrid_gap.at(suite), 3);
    };
    for (const auto &suite : suiteNames())
        add_row(suite);
    add_row("Average");
    printTable("Figure 12: per-suite speedup, immediate vs prediction "
               "gap 8",
               table);
    std::printf("\npaper: hybrid average ~1.21x immediate -> ~1.141x "
                "at gap 8, ~3.9%% above enhanced stride\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return clap::bench::benchMain("fig12_speedup_gap", argc, argv,
                                  printResults);
}
