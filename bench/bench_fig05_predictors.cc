/**
 * @file
 * Figure 5: prediction rate and accuracy of the enhanced stride,
 * stand-alone CAP, and hybrid CAP/stride predictors per suite with
 * the immediate-update model and the baseline configuration
 * (4K-entry 2-way LB, 4K-entry direct-mapped LT, base addresses,
 * control-flow indications, PF bits, LT tags).
 *
 * Paper reference points: hybrid predicts 67% of loads at 98.9%
 * accuracy; CAP alone 61%; CAP is 5-13% above stride everywhere but
 * MM, where arrays overwhelm the LT; misprediction rate of the
 * hybrid is ~27% lower than stride's.
 */

#include "bench/bench_util.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

struct Fig5Results
{
    std::vector<SuiteStats> stride;
    std::vector<SuiteStats> cap;
    std::vector<SuiteStats> hybrid;
};

const Fig5Results &
results()
{
    static const Fig5Results cached = [] {
        const std::size_t len = defaultTraceLength();
        Fig5Results r;
        r.stride = sweepPerSuite("stride", strideFactory(), {}, len);
        r.cap = sweepPerSuite("cap", capFactory(), {}, len);
        r.hybrid = sweepPerSuite("hybrid", hybridFactory(), {}, len);
        return r;
    }();
    return cached;
}

void
BM_Fig05_Predictors(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    const auto &avg_hybrid = results().hybrid.back().stats;
    state.counters["hybrid_pred_rate"] = avg_hybrid.predictionRate();
    state.counters["hybrid_accuracy"] = avg_hybrid.accuracy();
}
BENCHMARK(BM_Fig05_Predictors)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
printFig5()
{
    const auto &r = results();
    Table table;
    table.row({"suite", "stride_rate", "cap_rate", "hybrid_rate",
               "stride_acc", "cap_acc", "hybrid_acc"});
    for (std::size_t i = 0; i < r.hybrid.size(); ++i) {
        table.newRow();
        table.cell(r.hybrid[i].suite);
        table.percent(r.stride[i].stats.predictionRate());
        table.percent(r.cap[i].stats.predictionRate());
        table.percent(r.hybrid[i].stats.predictionRate());
        table.percent(r.stride[i].stats.accuracy());
        table.percent(r.cap[i].stats.accuracy());
        table.percent(r.hybrid[i].stats.accuracy());
    }
    printTable("Figure 5: prediction rate / accuracy per suite", table);
    std::printf("\npaper (Average): stride ~53%%, CAP ~61%%, hybrid "
                "~67%% @ ~98.9%% accuracy\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return clap::bench::benchMain("fig05_predictors", argc, argv,
                                  printFig5);
}
