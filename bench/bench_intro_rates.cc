/**
 * @file
 * Section 1 in-text numbers: "Last-address predictors surprisingly
 * handle an average of 40% of all load addresses, whereas stride-based
 * predictors add an additional 13%."
 *
 * Metric: correctly predicted speculative accesses out of all dynamic
 * loads, for the last-address baseline and the enhanced stride
 * predictor, over the whole catalog.
 */

#include "bench/bench_util.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

struct IntroResults
{
    std::vector<SuiteStats> last;
    std::vector<SuiteStats> stride;
};

const IntroResults &
results()
{
    static const IntroResults cached = [] {
        const std::size_t len = defaultTraceLength();
        IntroResults r;
        r.last = sweepPerSuite("last", lastAddressFactory(), {}, len);
        r.stride = sweepPerSuite("stride", strideFactory(), {}, len);
        return r;
    }();
    return cached;
}

void
BM_IntroRates(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    state.counters["last_correct_of_loads"] =
        results().last.back().stats.correctOfAllLoads();
    state.counters["stride_correct_of_loads"] =
        results().stride.back().stats.correctOfAllLoads();
}
BENCHMARK(BM_IntroRates)->Iterations(1)->Unit(benchmark::kMillisecond);

void
printResults()
{
    const auto &r = results();
    Table table;
    table.row({"suite", "last_correct", "stride_correct", "delta"});
    for (std::size_t i = 0; i < r.last.size(); ++i) {
        table.newRow();
        table.cell(r.last[i].suite);
        table.percent(r.last[i].stats.correctOfAllLoads());
        table.percent(r.stride[i].stats.correctOfAllLoads());
        table.percent(r.stride[i].stats.correctOfAllLoads() -
                      r.last[i].stats.correctOfAllLoads());
    }
    printTable("Section 1: last-address vs stride coverage "
               "(correct of all loads)",
               table);
    std::printf("\npaper (Average): last-address ~40%%, stride adds "
                "~13%% (total ~53%%)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return clap::bench::benchMain("intro_rates", argc, argv,
                                  printResults);
}
