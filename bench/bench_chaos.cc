/**
 * @file
 * Chaos harness for the shard lifecycle layer (serve/supervisor.hh +
 * serve/chaos.hh): drives a deterministic PredictionService through
 * repeated fault/kill/restore cycles and checks the recovery
 * guarantees the design document states.
 *
 * Two phases per client trace:
 *
 *  - "equality": bit-flip faults only. After every injected flip the
 *    shard is quarantined and recovered immediately — a strict
 *    restore of its last snapshot plus a replay of the since-capture
 *    request journal — before any further request is served. The
 *    recovered run must therefore produce aggregate PredictionStats
 *    exactly equal to the sharded PredictorSim reference
 *    (shardedReferenceStats), counter for counter, with zero shed
 *    requests: the snapshot/journal pair loses nothing.
 *
 *  - "ladder": every fault class, including worker kills and
 *    snapshot-file truncation/corruption (each damaged snapshot is
 *    followed by a forced shard failure so recovery must actually
 *    read the damaged file). This exercises the salvage and
 *    fresh-restart rungs of the recovery ladder; requests shed while
 *    a shard is quarantined void the strict-equality guarantee (the
 *    documented replay-window deviation), so the phase asserts
 *    recovery completeness instead: every load record is attempted,
 *    zero shards end unrecovered or quarantined, and the service is
 *    healthy at the end.
 *
 * Everything is seeded (--chaos-seed) and the service runs in
 * deterministic mode, so BENCH_chaos.json is byte-identical across
 * runs with the same seed and environment. Flags, on top of the
 * shared bench/sweep flags:
 *
 *   --chaos-seed=N  injection-sequence seed (default 0xc4a05)
 *
 * Environment knobs:
 *   CLAP_SERVE_SHARDS   shard count (default 4, power of two)
 *   CLAP_TRACE_INSTS    per-trace instruction budget (suites.hh)
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "serve/chaos.hh"
#include "serve/crosscheck.hh"
#include "serve/service.hh"
#include "serve/supervisor.hh"
#include "workloads/composer.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

std::uint64_t chaosSeed = 0xc4a05;

/// Trace records replayed between supervisor/injection ticks. Also
/// bounds the journal window: with snapshots every other tick a shard
/// journals at most ~2 chunks of requests between captures.
constexpr std::size_t chunkRecords = 16384;

/// Snapshot every snapEvery-th tick; the ticks in between restore
/// from the previous epoch and replay a non-empty journal.
constexpr unsigned snapEvery = 2;

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *text = std::getenv(name);
    if (text == nullptr || *text == '\0')
        return fallback;
    const long value = std::atol(text);
    return value < 1 ? fallback : static_cast<unsigned>(value);
}

unsigned
shardedConfigSize()
{
    unsigned shards = envUnsigned("CLAP_SERVE_SHARDS", 4);
    while (!isPowerOf2(shards))
        --shards;
    return shards;
}

/// One representative trace per behavioural family (as bench_serve).
std::vector<TraceSpec>
chaosSpecs()
{
    std::vector<TraceSpec> specs;
    for (const char *suite : {"INT", "MM", "TPC", "NT"})
        specs.push_back(buildSuite(suite).front());
    return specs;
}

/** Replay counters accumulated over every chunk of one cell. */
struct ChunkReplay
{
    std::uint64_t loads = 0;    ///< load records encountered
    std::uint64_t predicts = 0; ///< predicts completed
    std::uint64_t trains = 0;   ///< trains accepted
    std::uint64_t shed = 0;     ///< requests shed (ShardUnavailable)
};

/**
 * Replay records [@p begin, @p end) of @p trace through @p session,
 * immediate-update model. ShardUnavailable is counted and shed (the
 * client rides out a quarantine window); anything else aborts.
 */
Expected<void>
replayChunk(ClientSession &session, const Trace &trace,
            std::size_t begin, std::size_t end, ChunkReplay &replay)
{
    const auto &records = trace.records();
    for (std::size_t i = begin; i < end; ++i) {
        const auto &rec = records[i];
        if (rec.isLoad()) {
            ++replay.loads;
            auto pred = session.predict(rec.pc, rec.immOffset);
            if (!pred) {
                if (pred.error().code() ==
                    ErrorCode::ShardUnavailable) {
                    ++replay.shed;
                    continue; // skip the matching train
                }
                return std::move(pred.error())
                    .withContext("chaos replay predict at pc " +
                                 std::to_string(rec.pc));
            }
            ++replay.predicts;
            auto trained = session.train(rec.pc, rec.immOffset,
                                         rec.effAddr, *pred);
            if (!trained) {
                if (trained.error().code() ==
                    ErrorCode::ShardUnavailable) {
                    ++replay.shed;
                    continue;
                }
                return std::move(trained.error())
                    .withContext("chaos replay train at pc " +
                                 std::to_string(rec.pc));
            }
            ++replay.trains;
        } else if (rec.isBranch()) {
            session.observeBranch(rec.taken);
        } else if (rec.cls == InstClass::Call) {
            session.observeCall(rec.pc);
        }
    }
    return ok();
}

/** Everything one (phase, trace) cell produced. */
struct ChaosCell
{
    std::string phase;
    std::string trace;
    unsigned shards = 0;
    unsigned cycles = 0; ///< fault/recover ticks completed
    ChunkReplay replay;
    ChaosCounts faults;
    SupervisorStats sup;
    PredictionStats stats;     ///< final service aggregate
    PredictionStats reference; ///< clean sharded reference
    bool equalityChecked = false;
    bool statsEqual = false;
    unsigned quarantinedAtEnd = 0;
    bool healthyAtEnd = false;
};

/**
 * Run one chaos cell: chunked replay of @p trace with a fault
 * injected and recovered at every chunk boundary. @p ladder enables
 * the kill / snapshot-damage fault classes (and drops the equality
 * assertion — see file comment).
 */
Expected<ChaosCell>
runChaosCell(const std::string &phase, const TraceSpec &spec,
             std::shared_ptr<const Trace> trace, bool ladder,
             std::uint64_t seed)
{
    const unsigned shards = shardedConfigSize();

    ChaosCell cell;
    cell.phase = phase;
    cell.trace = spec.name;
    cell.shards = shards;

    ServiceConfig config;
    config.shards = shards;
    config.deterministic = true;
    config.overload = OverloadPolicy::Block;
    config.auditEveryBatches = 64;
    config.journalCapacity = 32768;
    PredictionService service(config, hybridFactory());

    SupervisorConfig supConfig;
    supConfig.snapshotDir = ".";
    supConfig.filePrefix = "chaos_" + phase + "_" + spec.name;
    ShardSupervisor supervisor(service, supConfig);

    ChaosConfig chaosConfig;
    chaosConfig.seed = seed;
    chaosConfig.flipLb = true;
    chaosConfig.flipLt = true;
    chaosConfig.killWorkers = ladder;
    chaosConfig.damageSnapshots = ladder;
    ChaosEngine engine(service, supervisor, chaosConfig);

    // Epoch 0: recovery must never fall back to a fresh restart just
    // because no snapshot exists yet.
    if (auto snapped = supervisor.snapshotAll(); !snapped) {
        return std::move(snapped.error())
            .withContext("initial snapshot of '" + spec.name + "'");
    }

    ClientSession session = service.connect();
    const std::size_t total = trace->size();
    for (std::size_t begin = 0; begin < total;
         begin += chunkRecords) {
        const std::size_t end = std::min(begin + chunkRecords, total);
        if (auto replayed = replayChunk(session, *trace, begin, end,
                                        cell.replay);
            !replayed) {
            return std::move(replayed.error());
        }

        if (cell.cycles % snapEvery == 0) {
            // Periodic epoch advance. Best-effort by design: a shard
            // quarantined by an unfired worker kill refuses its
            // snapshot and keeps the previous epoch.
            (void)supervisor.snapshotAll();
        }

        auto injected = engine.injectFault();
        if (!injected) {
            return std::move(injected.error())
                .withContext("injection cycle " +
                             std::to_string(cell.cycles));
        }
        // A damaged snapshot on disk is latent until something
        // restores from it; force that restore so the cycle actually
        // exercises the salvage / fresh-restart rungs.
        if (injected->fault == ChaosFault::SnapshotTruncate ||
            injected->fault == ChaosFault::SnapshotCorrupt) {
            service.failShard(
                injected->shard,
                makeError(ErrorCode::CorruptedState,
                          "chaos: forced recovery from damaged "
                          "snapshot"));
        }
        supervisor.checkAndRecover();
        ++cell.cycles;
    }
    // A worker kill armed on the final cycle fires (and is recovered)
    // here at the latest.
    supervisor.checkAndRecover();
    service.stop();

    cell.faults = engine.counts();
    cell.sup = supervisor.stats();
    cell.stats = service.aggregateStats();
    for (unsigned s = 0; s < shards; ++s) {
        if (service.shardQuarantined(s))
            ++cell.quarantinedAtEnd;
        std::remove(supervisor.shardSnapshotPath(s).c_str());
    }
    cell.healthyAtEnd = static_cast<bool>(service.health());

    if (!ladder) {
        cell.reference =
            shardedReferenceStats(*trace, hybridFactory(), shards);
        cell.equalityChecked = true;
        cell.statsEqual = cell.stats == cell.reference;
    }
    return cell;
}

/** Assert one cell's phase guarantees; failures land in BenchState
 *  (printed, in the JSON, and the process exits 3). */
void
checkCell(const ChaosCell &cell)
{
    auto fail = [&cell](const std::string &what) {
        BenchState::instance().failures.push_back(
            {"chaos/" + cell.phase + "/" + cell.trace, what});
    };

    if (cell.sup.unrecovered != 0) {
        fail(std::to_string(cell.sup.unrecovered) +
             " recovery attempts failed");
    }
    if (cell.quarantinedAtEnd != 0) {
        fail(std::to_string(cell.quarantinedAtEnd) +
             " shards still quarantined after the final recovery "
             "pass");
    }
    if (!cell.healthyAtEnd)
        fail("service unhealthy after the final recovery pass");

    if (cell.equalityChecked) {
        if (!cell.statsEqual) {
            fail("stats diverge from the clean reference (service "
                 "spec=" +
                 std::to_string(cell.stats.spec) + " correct=" +
                 std::to_string(cell.stats.specCorrect) +
                 ", reference spec=" +
                 std::to_string(cell.reference.spec) + " correct=" +
                 std::to_string(cell.reference.specCorrect) + ")");
        }
        if (cell.replay.shed != 0) {
            fail(std::to_string(cell.replay.shed) +
                 " requests shed in the equality phase (recovery "
                 "must complete before the next request)");
        }
        if (cell.sup.salvagedRestores != 0 ||
            cell.sup.freshRestarts != 0) {
            fail("equality phase took a non-strict recovery rung (" +
                 std::to_string(cell.sup.salvagedRestores) +
                 " salvaged, " +
                 std::to_string(cell.sup.freshRestarts) + " fresh)");
        }
    } else {
        // Ladder phase: every load must at least be attempted.
        if (cell.replay.predicts + cell.replay.shed <
            cell.replay.loads) {
            fail("replay lost loads (" +
                 std::to_string(cell.replay.loads) + " seen, " +
                 std::to_string(cell.replay.predicts) +
                 " predicted, " + std::to_string(cell.replay.shed) +
                 " shed)");
        }
    }
}

const std::vector<ChaosCell> &
results()
{
    static const std::vector<ChaosCell> cached = [] {
        std::vector<ChaosCell> cells;
        const std::vector<TraceSpec> specs = chaosSpecs();
        std::uint64_t cellSalt = 0;
        for (const bool ladder : {false, true}) {
            const std::string phase = ladder ? "ladder" : "equality";
            for (const auto &spec : specs) {
                const std::uint64_t seed =
                    chaosSeed ^ (0x9e3779b97f4a7c15ull * ++cellSalt);
                auto trace =
                    globalTraceStore().get(spec, defaultTraceLength());
                auto cell = runChaosCell(phase, spec, trace, ladder,
                                         seed);
                if (!cell) {
                    BenchState::instance().failures.push_back(
                        {"chaos/" + phase + "/" + spec.name,
                         cell.error().str()});
                    continue;
                }
                checkCell(*cell);
                cells.push_back(std::move(*cell));
            }
        }
        return cells;
    }();
    return cached;
}

void
BM_Chaos(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    std::uint64_t cycles = 0;
    std::uint64_t recoveries = 0;
    for (const ChaosCell &cell : results()) {
        cycles += cell.cycles;
        recoveries += cell.sup.recoveries;
    }
    state.counters["cycles"] = static_cast<double>(cycles);
    state.counters["recoveries"] = static_cast<double>(recoveries);
}
BENCHMARK(BM_Chaos)->Iterations(1)->Unit(benchmark::kMillisecond);

void
printResults()
{
    Table table;
    table.row({"phase", "trace", "cycles", "loads", "shed", "flips",
               "kills", "snap_dmg", "strict", "salvage", "fresh",
               "unrec", "stats_equal"});
    for (const ChaosCell &cell : results()) {
        table.newRow();
        table.cell(cell.phase);
        table.cell(cell.trace);
        table.cell(static_cast<std::uint64_t>(cell.cycles));
        table.cell(cell.replay.loads);
        table.cell(cell.replay.shed);
        table.cell(cell.faults.lbFlips + cell.faults.ltFlips);
        table.cell(cell.faults.workerKills);
        table.cell(cell.faults.snapshotTruncations +
                   cell.faults.snapshotCorruptions);
        table.cell(cell.sup.strictRestores);
        table.cell(cell.sup.salvagedRestores);
        table.cell(cell.sup.freshRestarts);
        table.cell(cell.sup.unrecovered);
        table.cell(cell.equalityChecked
                       ? (cell.statsEqual ? "yes" : "NO")
                       : "n/a");
    }
    printTable("Chaos cycles: fault injection + recovery per trace "
               "(seed 0x" +
                   [] {
                       char buf[32];
                       std::snprintf(buf, sizeof buf, "%llx",
                                     static_cast<unsigned long long>(
                                         chaosSeed));
                       return std::string(buf);
                   }() +
                   ")",
               table);

    std::printf("\nexpected: zero shed/unrecovered and stats_equal = "
                "yes in the equality phase (snapshot + journal replay "
                "lose nothing); the ladder phase exercises salvage / "
                "fresh-restart rungs and only guarantees recovery, "
                "not equality\n");
}

/** Strip the bench_chaos-specific flags (google-benchmark rejects
 *  flags it does not know). */
void
parseChaosFlags(int &argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::string prefix = "--chaos-seed=";
        if (arg.compare(0, prefix.size(), prefix) == 0) {
            chaosSeed = std::strtoull(
                arg.c_str() + prefix.size(), nullptr, 0);
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    parseChaosFlags(argc, argv);
    return clap::bench::benchMain("chaos", argc, argv, printResults);
}
