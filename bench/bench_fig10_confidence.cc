/**
 * @file
 * Figure 10: influence of LT tags and control-flow (path)
 * indications on the stand-alone CAP predictor: prediction rate and
 * misprediction rate for {no tag, 4-bit tag, 8-bit tag, 4-bit+path,
 * 8-bit+path}.
 *
 * Paper reference points: no-tag = 64.2% rate at 3.3% misprediction;
 * 4-bit tags cut mispredictions 57% while losing only ~2% of
 * predictions; 8-bit tags cut another 26%; path bits cut a further
 * 39%/33% (to 0.9%/0.7%). Also section 4.5 in-text: raising the
 * history length to 6 only cuts mispredictions ~6% (tags dominate),
 * reproduced as the last row.
 */

#include "bench/bench_util.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

struct ConfidenceConfig
{
    const char *label;
    unsigned tagBits;
    unsigned pathBits;
    unsigned historyLength;
};

constexpr ConfidenceConfig configs[] = {
    {"no tag", 0, 0, 4},        {"4b tag", 4, 0, 4},
    {"8b tag", 8, 0, 4},        {"4b tag + path", 4, 4, 4},
    {"8b tag + path", 8, 4, 4}, {"8b tag, hist 6", 8, 0, 6},
};

const std::vector<PredictionStats> &
results()
{
    static const std::vector<PredictionStats> cached = [] {
        const std::size_t len = defaultTraceLength();
        std::vector<PredictionStats> r;
        for (const auto &cfg : configs) {
            PredictorFactory factory = [&cfg] {
                CapPredictorConfig config;
                config.cap.ltTagBits = cfg.tagBits;
                config.cap.pathBits = cfg.pathBits;
                config.cap.historyLength = cfg.historyLength;
                return std::make_unique<CapPredictor>(config);
            };
            r.push_back(
                sweepPerSuite(cfg.label, factory, {}, len)
                    .back()
                    .stats);
        }
        return r;
    }();
    return cached;
}

void
BM_Fig10_Confidence(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    state.counters["notag_mispred"] = results()[0].mispredictionRate();
    state.counters["8btag_path_mispred"] =
        results()[4].mispredictionRate();
}
BENCHMARK(BM_Fig10_Confidence)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
printResults()
{
    Table table;
    table.row({"config", "pred_rate", "mispred_rate",
               "mispred_vs_no_tag"});
    const double base = results()[0].mispredictionRate();
    for (std::size_t c = 0; c < std::size(configs); ++c) {
        const auto &stats = results()[c];
        table.newRow();
        table.cell(configs[c].label);
        table.percent(stats.predictionRate());
        table.percent(stats.mispredictionRate(), 2);
        if (base > 0) {
            table.percent(
                (stats.mispredictionRate() - base) / base, 0);
        } else {
            table.cell(std::string("-"));
        }
    }
    printTable("Figure 10: CAP prediction/misprediction rate vs LT "
               "tags and path indications",
               table);
    std::printf("\npaper: no-tag 64.2%%/3.3%%; 4b tag -57%% mispred; "
                "8b tag -26%% more; +path -39%%/-33%% further (0.9%%/"
                "0.7%%); history 6 alone only -6%%\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return clap::bench::benchMain("fig10_confidence", argc, argv,
                                  printResults);
}
