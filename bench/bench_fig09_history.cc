/**
 * @file
 * Figure 9: correct speculative accesses (out of all dynamic loads)
 * of a stand-alone CAP predictor as a function of the history length
 * {1, 2, 3, 4, 6, 12}, with and without global correlation (base
 * addresses). No confidence mechanisms, to isolate the effect.
 *
 * Paper reference points: global correlation is worth ~10% of all
 * loads; the optimum history length is 2 without correlation and 3-4
 * with it; length 12 declines on both curves.
 */

#include "bench/bench_util.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

constexpr unsigned historyLengths[] = {1, 2, 3, 4, 6, 12};

struct Fig9Results
{
    std::vector<double> withCorr;
    std::vector<double> withoutCorr;
};

const Fig9Results &
results()
{
    static const Fig9Results cached = [] {
        const std::size_t len = defaultTraceLength();
        Fig9Results r;
        for (const bool corr : {true, false}) {
            for (const unsigned hist : historyLengths) {
                PredictorFactory factory = [corr, hist] {
                    CapPredictorConfig config;
                    config.cap.useConfidence = false;
                    config.cap.globalCorrelation = corr;
                    config.cap.historyLength = hist;
                    return std::make_unique<CapPredictor>(config);
                };
                const std::string label =
                    std::string(corr ? "corr" : "nocorr") + "_h" +
                    std::to_string(hist);
                const auto suites =
                    sweepPerSuite(label, factory, {}, len);
                const double value =
                    suites.back().stats.correctOfAllLoads();
                (corr ? r.withCorr : r.withoutCorr).push_back(value);
            }
        }
        return r;
    }();
    return cached;
}

void
BM_Fig09_History(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    state.counters["corr_len4"] = results().withCorr[3];
    state.counters["nocorr_len4"] = results().withoutCorr[3];
}
BENCHMARK(BM_Fig09_History)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
printResults()
{
    const auto &r = results();
    Table table;
    table.row({"history_length", "global_corr", "no_global_corr",
               "benefit"});
    for (std::size_t i = 0; i < std::size(historyLengths); ++i) {
        table.newRow();
        table.cell(std::uint64_t{historyLengths[i]});
        table.percent(r.withCorr[i]);
        table.percent(r.withoutCorr[i]);
        table.percent(r.withCorr[i] - r.withoutCorr[i]);
    }
    printTable("Figure 9: correct spec accesses of all loads vs "
               "history length (stand-alone CAP, no confidence)",
               table);
    std::printf("\npaper: correlation worth ~10%% of loads; optimum "
                "history 2 without correlation, 3-4 with it\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return clap::bench::benchMain("fig09_history", argc, argv,
                                  printResults);
}
