/**
 * @file
 * Figure 7: per-trace processor speedup from address prediction
 * (enhanced stride and hybrid, immediate update) over the
 * no-address-prediction baseline, on the out-of-order timing model.
 *
 * Paper reference points: most traces land in the 10-25% range, ~21%
 * average; the hybrid is ~6.3% above the enhanced stride on average;
 * TPC and W95 gain least (LB contention); JAVA gains most (load-heavy
 * stack code).
 */

#include <map>

#include "bench/bench_util.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

struct Fig7Results
{
    std::vector<SpeedupResult> stride;
    std::vector<SpeedupResult> hybrid;
};

const Fig7Results &
results()
{
    static const Fig7Results cached = [] {
        const std::size_t len = defaultTraceLength();
        const auto specs = buildCatalog();
        Fig7Results r;
        r.stride = sweepSpeedup("stride", specs, strideFactory(),
                                TimingConfig{}, len);
        r.hybrid = sweepSpeedup("hybrid", specs, hybridFactory(),
                                TimingConfig{}, len);
        return r;
    }();
    return cached;
}

double
averageSpeedup(const std::vector<SpeedupResult> &rows)
{
    std::vector<double> speedups;
    for (const auto &row : rows)
        speedups.push_back(row.speedup());
    return geomean(speedups);
}

void
BM_Fig07_Speedup(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    state.counters["stride_speedup"] =
        averageSpeedup(results().stride);
    state.counters["hybrid_speedup"] =
        averageSpeedup(results().hybrid);
}
BENCHMARK(BM_Fig07_Speedup)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
printResults()
{
    const auto &r = results();
    Table table;
    table.row({"trace", "stride_speedup", "hybrid_speedup"});
    std::map<std::string, std::vector<double>> per_suite_stride;
    std::map<std::string, std::vector<double>> per_suite_hybrid;
    for (std::size_t i = 0; i < r.stride.size(); ++i) {
        table.newRow();
        table.cell(r.stride[i].trace);
        table.cell(r.stride[i].speedup(), 3);
        table.cell(r.hybrid[i].speedup(), 3);
        per_suite_stride[r.stride[i].suite].push_back(
            r.stride[i].speedup());
        per_suite_hybrid[r.hybrid[i].suite].push_back(
            r.hybrid[i].speedup());
    }
    printTable("Figure 7: per-trace speedup over no address "
               "prediction (immediate update)",
               table);

    Table summary;
    summary.row({"suite", "stride_speedup", "hybrid_speedup"});
    for (const auto &[suite, values] : per_suite_stride) {
        summary.newRow();
        summary.cell(suite);
        summary.cell(geomean(values), 3);
        summary.cell(geomean(per_suite_hybrid[suite]), 3);
    }
    summary.newRow();
    summary.cell(std::string("Average"));
    summary.cell(averageSpeedup(r.stride), 3);
    summary.cell(averageSpeedup(r.hybrid), 3);
    printTable("Figure 7 summary (geometric mean per suite)", summary);
    std::printf("\npaper: most traces 1.10-1.25x, average ~1.21x for "
                "the hybrid, ~6.3%% above enhanced stride; TPC/W95 "
                "lowest, JAVA highest\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return clap::bench::benchMain("fig07_speedup", argc, argv,
                                  printResults);
}
