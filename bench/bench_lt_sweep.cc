/**
 * @file
 * Section 4.2 in-text: hybrid prediction-rate sensitivity to the
 * link-table size — "the hybrid prediction rate steadily increases
 * from 63% for 1K-entry LT to about 68% for 8K LT", most visible for
 * the address-volatile suites (CAD, INT, JAV, MM).
 */

#include "bench/bench_util.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

constexpr std::size_t ltSizes[] = {1024, 2048, 4096, 8192};

constexpr unsigned ltAssocs[] = {1, 2, 4};

const std::vector<std::vector<SuiteStats>> &
assocResults()
{
    static const std::vector<std::vector<SuiteStats>> cached = [] {
        const std::size_t len = defaultTraceLength();
        std::vector<std::vector<SuiteStats>> r;
        for (const unsigned assoc : ltAssocs) {
            PredictorFactory factory = [assoc] {
                HybridConfig config;
                config.cap.ltAssoc = assoc;
                return std::make_unique<HybridPredictor>(config);
            };
            r.push_back(sweepPerSuite(
                "lt_assoc" + std::to_string(assoc), factory, {}, len));
        }
        return r;
    }();
    return cached;
}

const std::vector<std::vector<SuiteStats>> &
results()
{
    static const std::vector<std::vector<SuiteStats>> cached = [] {
        const std::size_t len = defaultTraceLength();
        std::vector<std::vector<SuiteStats>> r;
        for (const auto entries : ltSizes) {
            PredictorFactory factory = [entries] {
                HybridConfig config;
                config.cap.ltEntries = entries;
                return std::make_unique<HybridPredictor>(config);
            };
            r.push_back(sweepPerSuite(
                "lt" + std::to_string(entries), factory, {}, len));
        }
        return r;
    }();
    return cached;
}

void
BM_LtSweep(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    for (std::size_t c = 0; c < std::size(ltSizes); ++c) {
        state.counters["lt_" + std::to_string(ltSizes[c] / 1024) + "k"] =
            results()[c].back().stats.predictionRate();
    }
}
BENCHMARK(BM_LtSweep)->Iterations(1)->Unit(benchmark::kMillisecond);

void
printResults()
{
    const auto &r = results();
    Table table;
    table.row({"suite", "1K", "2K", "4K", "8K"});
    const std::size_t rows = r.front().size();
    for (std::size_t i = 0; i < rows; ++i) {
        table.newRow();
        table.cell(r.front()[i].suite);
        for (std::size_t c = 0; c < std::size(ltSizes); ++c)
            table.percent(r[c][i].stats.predictionRate());
    }
    printTable("Section 4.2: hybrid prediction rate vs LT entries",
               table);
    std::printf("\npaper (Average): ~63%% @ 1K rising to ~68%% @ 8K\n");

    Table assoc_table;
    assoc_table.row({"suite", "1-way", "2-way", "4-way"});
    const auto &ar = assocResults();
    for (std::size_t i = 0; i < ar.front().size(); ++i) {
        assoc_table.newRow();
        assoc_table.cell(ar.front()[i].suite);
        for (std::size_t c = 0; c < std::size(ltAssocs); ++c)
            assoc_table.percent(ar[c][i].stats.predictionRate());
    }
    printTable("Section 4.2: hybrid prediction rate vs LT "
               "associativity (4K entries)",
               assoc_table);
    std::printf("\npaper: LT associativity has low impact (history "
                "distribution is quite even)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return clap::bench::benchMain("lt_sweep", argc, argv,
                                  printResults);
}
