/**
 * @file
 * Figure 6: prediction rate of the hybrid CAP/enhanced-stride
 * predictor as a function of the load-buffer size and associativity
 * (2K 2-way, 4K 1-way, 4K 2-way, 4K 4-way, 8K 2-way).
 *
 * Paper reference points: CAD, JAVA, NT, TPC and W95 (the suites
 * with many static loads) steadily gain from bigger LBs; 2-way is a
 * clear win over direct-mapped; >2-way is marginal; accuracy is flat
 * (~98.9%) across configurations.
 */

#include "bench/bench_util.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

struct LbConfig
{
    const char *label;
    std::size_t entries;
    unsigned assoc;
};

constexpr LbConfig lbConfigs[] = {
    {"2K,2way", 2048, 2}, {"4K,1way", 4096, 1}, {"4K,2way", 4096, 2},
    {"4K,4way", 4096, 4}, {"8K,2way", 8192, 2},
};

const std::vector<std::vector<SuiteStats>> &
results()
{
    static const std::vector<std::vector<SuiteStats>> cached = [] {
        const std::size_t len = defaultTraceLength();
        std::vector<std::vector<SuiteStats>> r;
        for (const auto &lb : lbConfigs) {
            PredictorFactory factory = [&lb] {
                HybridConfig config;
                config.lb.entries = lb.entries;
                config.lb.assoc = lb.assoc;
                return std::make_unique<HybridPredictor>(config);
            };
            r.push_back(sweepPerSuite(lb.label, factory, {}, len));
        }
        return r;
    }();
    return cached;
}

void
BM_Fig06_LbSweep(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    for (std::size_t c = 0; c < std::size(lbConfigs); ++c) {
        state.counters[lbConfigs[c].label] =
            results()[c].back().stats.predictionRate();
    }
}
BENCHMARK(BM_Fig06_LbSweep)->Iterations(1)->Unit(benchmark::kMillisecond);

void
printResults()
{
    const auto &r = results();
    Table table;
    {
        std::vector<std::string> header = {"suite"};
        for (const auto &lb : lbConfigs)
            header.push_back(lb.label);
        header.push_back("acc(4K,2way)");
        table.row(header);
    }
    const std::size_t rows = r.front().size();
    for (std::size_t i = 0; i < rows; ++i) {
        table.newRow();
        table.cell(r.front()[i].suite);
        for (std::size_t c = 0; c < std::size(lbConfigs); ++c)
            table.percent(r[c][i].stats.predictionRate());
        table.percent(r[2][i].stats.accuracy());
    }
    printTable("Figure 6: hybrid prediction rate vs LB size/assoc",
               table);
    std::printf("\npaper: rate rises steadily with LB size for CAD/"
                "JAV/NT/TPC/W95; 2-way >> 1-way; 4-way marginal; "
                "accuracy flat ~98.9%%\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return clap::bench::benchMain("fig06_lb_sweep", argc, argv,
                                  printResults);
}
