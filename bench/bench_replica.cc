/**
 * @file
 * The replication proof for src/replica/: a single client replays a
 * trace through one ReplicaGateway endpoint fronting N clapd-shaped
 * replica processes, and the harness asserts the contract the layer
 * was designed around — the replica set is indistinguishable from one
 * unsharded deterministic service. Aggregate PredictionStats must
 * equal serve/crosscheck's shardedReferenceStats bit for bit, the
 * divergence auditor must find every replica's per-shard stats
 * identical after a drain, and wrong_replies must be 0 everywhere.
 *
 * Two phases, all with deterministic tables:
 *
 *   1. Balanced replay: three blank replicas are cold-started through
 *      one healthPass() (first answers donorless, seeds the rest),
 *      then the full trace flows through the gateway with the seeded
 *      balance policy. Every predict lands on a seed-chosen replica;
 *      every train fans out to all three. The per-replica predict
 *      counts are a pure function of the balance seed.
 *
 *   2. Failover: the trace replays in segments and a KillPlan-seeded
 *      victim is SIGKILLed at segment boundaries. Round one heals
 *      through healthPass() (ping -> Down replica answered ->
 *      SnapshotFetch from a donor -> SnapshotInstall -> rejoin);
 *      round two exercises the journal deterministically — beginJoin
 *      cuts the snapshot, a whole segment of trains lands in the
 *      journal, finishJoin replays it. The client sees zero errors
 *      end to end: predicts fail over inside the gateway, trains are
 *      never shed while any replica serves.
 *
 * Both phases end with the divergence audit, and running the binary
 * twice must produce byte-identical BENCH_replica.json — which is
 * exactly what the CI replica-smoke job diffs.
 *
 * Flags (besides the shared bench/sweep flags):
 *   --replica-seed=N   balance + kill schedule seed (default 0x5eed)
 *
 * Child mode (internal): --child-serve=ENDPOINT --shards=N
 * --ready-fd=FD runs a deterministic service + gateway until a
 * Shutdown frame (or SIGKILL), writing one readiness byte to FD.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "replica/chaos.hh"
#include "replica/gateway.hh"
#include "serve/crosscheck.hh"
#include "serve/service.hh"
#include "workloads/composer.hh"

namespace
{

using namespace clap;
using namespace clap::bench;
using namespace clap::net;
using namespace clap::replica;

std::uint64_t replicaSeed = 0x5eed; ///< --replica-seed

constexpr unsigned kReplicas = 3;
constexpr unsigned kShards = 2;

std::string
socketPath(const std::string &tag)
{
    return "/tmp/clap_replica_" + std::to_string(getpid()) + "_" + tag +
           ".sock";
}

std::shared_ptr<const Trace>
benchTrace()
{
    return globalTraceStore().get(buildSuite("INT").front(),
                                  defaultTraceLength());
}

/* ------------------------------------------------------------------ */
/* Child mode: this binary re-executed as one replica process.        */
/* ------------------------------------------------------------------ */

int
runChildServe(const std::string &endpoint, unsigned shards,
              int ready_fd)
{
    std::signal(SIGPIPE, SIG_IGN);
    ServiceConfig serviceConfig;
    serviceConfig.shards = shards;
    serviceConfig.deterministic = true;
    serviceConfig.overload = OverloadPolicy::Block;
    PredictionService service(serviceConfig, hybridFactory());

    ServerConfig serverConfig;
    serverConfig.endpoint = endpoint;
    NetServer server(service, nullptr, serverConfig);
    if (auto started = server.start(); !started) {
        std::fprintf(stderr, "child-serve: %s\n",
                     started.error().str().c_str());
        return 1;
    }
    if (ready_fd >= 0) {
        const char byte = 'R';
        (void)!write(ready_fd, &byte, 1);
        close(ready_fd);
    }
    while (!server.shutdownRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    server.stop();
    service.stop();
    return 0;
}

/** One spawned replica process (fork + exec of /proc/self/exe). */
struct ChildServer
{
    pid_t pid = -1;
    std::string endpoint;

    /** Spawn and block until the child's readiness byte arrives. */
    bool
    start(const std::string &endpoint_spec, unsigned shards,
          std::string &error)
    {
        endpoint = endpoint_spec;
        char self[4096];
        const ssize_t n =
            readlink("/proc/self/exe", self, sizeof(self) - 1);
        if (n <= 0) {
            error = "readlink /proc/self/exe failed";
            return false;
        }
        self[n] = '\0';

        int ready[2];
        if (pipe(ready) != 0) {
            error = "pipe() failed";
            return false;
        }
        const std::string serveArg = "--child-serve=" + endpoint_spec;
        const std::string shardsArg =
            "--shards=" + std::to_string(shards);
        const std::string readyArg =
            "--ready-fd=" + std::to_string(ready[1]);

        pid = fork();
        if (pid < 0) {
            close(ready[0]);
            close(ready[1]);
            error = "fork() failed";
            return false;
        }
        if (pid == 0) {
            close(ready[0]);
            char *args[] = {self, const_cast<char *>(serveArg.c_str()),
                            const_cast<char *>(shardsArg.c_str()),
                            const_cast<char *>(readyArg.c_str()),
                            nullptr};
            execv(self, args);
            _exit(127);
        }
        close(ready[1]);

        char byte = 0;
        const ssize_t got = read(ready[0], &byte, 1);
        close(ready[0]);
        if (got != 1) {
            error = "replica child exited before becoming ready";
            (void)kill();
            return false;
        }
        return true;
    }

    /** SIGKILL + reap (the crash the gateway must ride through). */
    int
    kill()
    {
        if (pid < 0)
            return -1;
        ::kill(pid, SIGKILL);
        int status = 0;
        waitpid(pid, &status, 0);
        pid = -1;
        return status;
    }

    /** Reap after a client-requested shutdown. */
    int
    wait()
    {
        if (pid < 0)
            return -1;
        int status = 0;
        waitpid(pid, &status, 0);
        pid = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }
};

/** Shutdown one replica child directly (bypassing the gateway, whose
 *  Shutdown frame stops only the front door). */
void
shutdownChild(ChildServer &child)
{
    ClientConfig config;
    config.endpoint = child.endpoint;
    config.clientName = "replica-bench-admin";
    NetClient admin(config);
    if (admin.requestShutdown())
        child.wait();
    else
        child.kill();
}

/* ------------------------------------------------------------------ */
/* Shared replay machinery.                                           */
/* ------------------------------------------------------------------ */

struct ReplayCounts
{
    std::uint64_t loads = 0;
    std::uint64_t predictErrors = 0;
    std::uint64_t trainErrors = 0;

    void
    add(const ReplayCounts &other)
    {
        loads += other.loads;
        predictErrors += other.predictErrors;
        trainErrors += other.trainErrors;
    }
};

/**
 * Replay records [@p first, @p last) of @p trace through @p client,
 * immediate-update model. While any replica serves, the gateway must
 * absorb every fault: a predict fails over internally and a train
 * lands on the survivors, so both error counts are asserted to be 0
 * at the end of each phase.
 */
ReplayCounts
replaySlice(NetClient &client, const Trace &trace, std::size_t first,
            std::size_t last)
{
    ReplayCounts counts;
    const auto &records = trace.records();
    for (std::size_t i = first; i < last && i < records.size(); ++i) {
        const auto &rec = records[i];
        if (rec.isLoad()) {
            ++counts.loads;
            auto pred =
                client.predict(client.makeInfo(rec.pc, rec.immOffset));
            if (!pred) {
                ++counts.predictErrors;
                continue;
            }
            auto trained = client.train(
                client.makeInfo(rec.pc, rec.immOffset), rec.effAddr,
                *pred);
            if (!trained)
                ++counts.trainErrors;
        } else if (rec.isBranch()) {
            client.observeBranch(rec.taken);
        } else if (rec.cls == InstClass::Call) {
            client.observeCall(rec.pc);
        }
    }
    return counts;
}

ClientConfig
clientConfig(const std::string &endpoint)
{
    ClientConfig config;
    config.endpoint = endpoint;
    config.clientName = "replica-bench";
    config.maxAttempts = 8;
    config.backoffBaseMs = 1;
    config.backoffMaxMs = 20;
    return config;
}

/** A gateway + front-door server over already-started children. */
struct GatewayStack
{
    std::unique_ptr<ReplicaGateway> gateway;
    std::unique_ptr<NetServer> server;

    bool
    start(const std::vector<std::string> &replicas,
          const std::string &endpoint, const char *phase)
    {
        ReplicaGatewayConfig config;
        config.replicas = replicas;
        config.shards = kShards;
        config.balance = ReplicaGatewayConfig::Balance::Seeded;
        config.balanceSeed = replicaSeed;
        gateway = std::make_unique<ReplicaGateway>(config);
        if (auto started = gateway->start(); !started) {
            BenchState::instance().failures.push_back(
                {std::string("replica/") + phase + "/gateway-start",
                 started.error().str()});
            return false;
        }
        ServerConfig serverConfig;
        serverConfig.endpoint = endpoint;
        serverConfig.serverName = "clapr";
        server = std::make_unique<NetServer>(*gateway, serverConfig);
        if (auto started = server->start(); !started) {
            BenchState::instance().failures.push_back(
                {std::string("replica/") + phase + "/server-start",
                 started.error().str()});
            return false;
        }
        return true;
    }

    void
    stop()
    {
        if (server)
            server->stop();
        if (gateway)
            gateway->stop();
    }
};

/** Record a failure unless @p condition holds. */
void
expect(bool condition, const std::string &key, const std::string &what)
{
    if (!condition)
        BenchState::instance().failures.push_back({key, what});
}

/* ------------------------------------------------------------------ */
/* Phase 1: balanced replay over three healthy replicas.              */
/* ------------------------------------------------------------------ */

struct BalancedRow
{
    ReplayCounts counts;
    ClientCounters client;
    GatewayCounters gateway;
    std::vector<std::uint64_t> perReplicaPredicts;
    std::uint64_t coldJoins = 0;
    PredictionStats stats;
    PredictionStats reference;
    bool statsEqual = false;
    bool auditEqual = false;
    bool completed = false;
};

BalancedRow
runBalancedPhase(const Trace &trace)
{
    BalancedRow row;
    std::vector<ChildServer> children(kReplicas);
    std::vector<std::string> endpoints;
    std::string error;
    for (unsigned i = 0; i < kReplicas; ++i) {
        endpoints.push_back(
            "unix:" + socketPath("bal-r" + std::to_string(i)));
        if (!children[i].start(endpoints[i], kShards, error)) {
            BenchState::instance().failures.push_back(
                {"replica/balanced/start-r" + std::to_string(i),
                 error});
            for (unsigned j = 0; j < i; ++j)
                children[j].kill();
            return row;
        }
    }

    GatewayStack stack;
    const std::string front = "unix:" + socketPath("bal-gw");
    if (!stack.start(endpoints, front, "balanced")) {
        for (auto &child : children)
            child.kill();
        return row;
    }

    // One pass cold-starts the set: every replica is blank and Down,
    // so the first to answer joins donorless and donates to the rest.
    const unsigned joined = stack.gateway->healthPass();
    expect(joined == kReplicas, "replica/balanced/cold-start",
           std::to_string(joined) + " of " +
               std::to_string(kReplicas) + " replicas joined");

    {
        NetClient client(clientConfig(front));
        row.counts =
            replaySlice(client, trace, 0, trace.records().size());
        auto stats = client.stats();
        if (stats) {
            row.stats = stats->aggregate;
        } else {
            BenchState::instance().failures.push_back(
                {"replica/balanced/stats", stats.error().str()});
        }
        row.client = client.counters();
    }

    auto audit = stack.gateway->auditReplicas();
    if (audit) {
        row.auditEqual = audit->equal;
    } else {
        BenchState::instance().failures.push_back(
            {"replica/balanced/audit", audit.error().str()});
    }

    for (const ReplicaSnapshot &snap :
         stack.gateway->replicaSnapshots()) {
        row.perReplicaPredicts.push_back(snap.counters.predictsServed);
        row.coldJoins += snap.counters.coldJoins;
    }
    row.gateway = stack.gateway->counters();
    row.reference =
        shardedReferenceStats(trace, hybridFactory(), kShards);
    row.statsEqual = row.stats == row.reference;
    row.completed = true;

    stack.stop();
    for (auto &child : children)
        shutdownChild(child);
    for (unsigned i = 0; i < kReplicas; ++i)
        std::remove(socketPath("bal-r" + std::to_string(i)).c_str());
    std::remove(socketPath("bal-gw").c_str());

    expect(row.statsEqual, "replica/balanced/stats-equal",
           "replicated aggregate diverges from the unsharded "
           "reference (spec=" +
               std::to_string(row.stats.spec) + " vs " +
               std::to_string(row.reference.spec) + ")");
    expect(row.auditEqual, "replica/balanced/audit-equal",
           "per-shard stats diverge across replicas");
    expect(row.client.wrongReplies == 0,
           "replica/balanced/wrong-replies",
           std::to_string(row.client.wrongReplies) +
               " replies paired with the wrong request");
    expect(row.counts.predictErrors == 0 &&
               row.counts.trainErrors == 0,
           "replica/balanced/errors",
           std::to_string(row.counts.predictErrors) + " predicts / " +
               std::to_string(row.counts.trainErrors) +
               " trains failed with every replica healthy");
    std::uint64_t served = 0;
    for (std::uint64_t predicts : row.perReplicaPredicts)
        served += predicts;
    expect(served == row.counts.loads, "replica/balanced/conservation",
           "per-replica predict counts do not sum to the load count");
    return row;
}

/* ------------------------------------------------------------------ */
/* Phase 2: seeded SIGKILL failover with heal and journal rounds.     */
/* ------------------------------------------------------------------ */

struct FailoverRow
{
    unsigned kills = 0;
    unsigned healVictim = 0;
    unsigned journalVictim = 0;
    ReplayCounts counts;
    ClientCounters client;
    GatewayCounters gateway;
    std::uint64_t journaled = 0;
    std::uint64_t replayed = 0;
    std::uint64_t bootstrapBytes = 0;
    PredictionStats stats;
    PredictionStats reference;
    bool statsEqual = false;
    bool auditEqual = false;
    bool completed = false;
};

FailoverRow
runFailoverPhase(const Trace &trace)
{
    // Six segments: [kill victim A] heal, then [kill victim B]
    // beginJoin / journal a whole segment / finishJoin, then a final
    // all-healthy segment. Both victims come from the seeded plan.
    constexpr unsigned segments = 6;
    FailoverRow row;
    const KillPlan plan(replicaSeed, kReplicas, /*rounds=*/2);
    row.healVictim = plan.victim(0);
    row.journalVictim = plan.victim(1);

    std::vector<ChildServer> children(kReplicas);
    std::vector<std::string> endpoints;
    std::string error;
    for (unsigned i = 0; i < kReplicas; ++i) {
        endpoints.push_back(
            "unix:" + socketPath("fo-r" + std::to_string(i)));
        if (!children[i].start(endpoints[i], kShards, error)) {
            BenchState::instance().failures.push_back(
                {"replica/failover/start-r" + std::to_string(i),
                 error});
            for (unsigned j = 0; j < i; ++j)
                children[j].kill();
            return row;
        }
    }

    GatewayStack stack;
    const std::string front = "unix:" + socketPath("fo-gw");
    if (!stack.start(endpoints, front, "failover")) {
        for (auto &child : children)
            child.kill();
        return row;
    }
    const unsigned joined = stack.gateway->healthPass();
    expect(joined == kReplicas, "replica/failover/cold-start",
           std::to_string(joined) + " of " +
               std::to_string(kReplicas) + " replicas joined");

    const std::size_t total = trace.records().size();
    auto sliceBounds = [total](unsigned seg) {
        return std::pair<std::size_t, std::size_t>{
            total * seg / segments, total * (seg + 1) / segments};
    };

    bool aborted = false;
    {
        NetClient client(clientConfig(front));
        for (unsigned seg = 0; seg < segments && !aborted; ++seg) {
            switch (seg) {
              case 1:
                // Victim A dies between round trips. The gateway
                // discovers it inside this segment: a predict forward
                // strikes it, the first fanned train marks it Down.
                children[row.healVictim].kill();
                ++row.kills;
                break;
              case 2:
                // Restart, then heal through the production path: the
                // pass pings the Down replica, it answers, and the
                // full bootstrap runs inside healthPass().
                if (!children[row.healVictim].start(
                        endpoints[row.healVictim], kShards, error)) {
                    BenchState::instance().failures.push_back(
                        {"replica/failover/restart-heal", error});
                    aborted = true;
                    break;
                }
                if (stack.gateway->healthPass() != 1) {
                    BenchState::instance().failures.push_back(
                        {"replica/failover/heal",
                         "healthPass did not rejoin the victim"});
                }
                break;
              case 3:
                children[row.journalVictim].kill();
                ++row.kills;
                break;
              case 4:
                // Journal round: restart the victim and cut its
                // snapshot now, but leave it Joining for the whole
                // segment — every train below lands in its journal.
                if (!children[row.journalVictim].start(
                        endpoints[row.journalVictim], kShards,
                        error)) {
                    BenchState::instance().failures.push_back(
                        {"replica/failover/restart-journal", error});
                    aborted = true;
                    break;
                }
                if (auto begun = stack.gateway->beginJoin(
                        row.journalVictim);
                    !begun) {
                    BenchState::instance().failures.push_back(
                        {"replica/failover/begin-join",
                         begun.error().str()});
                    aborted = true;
                }
                break;
              default:
                break;
            }
            if (aborted)
                break;
            const auto [first, last] = sliceBounds(seg);
            row.counts.add(replaySlice(client, trace, first, last));
            if (seg == 4) {
                // The journaled segment is over: install the cut,
                // replay the journal, and re-enter rotation.
                if (auto finished = stack.gateway->finishJoin(
                        row.journalVictim);
                    !finished) {
                    BenchState::instance().failures.push_back(
                        {"replica/failover/finish-join",
                         finished.error().str()});
                    aborted = true;
                }
            }
        }

        auto stats = client.stats();
        if (stats) {
            row.stats = stats->aggregate;
        } else {
            BenchState::instance().failures.push_back(
                {"replica/failover/stats", stats.error().str()});
        }
        row.client = client.counters();
    }

    auto audit = stack.gateway->auditReplicas();
    if (audit) {
        row.auditEqual = audit->equal;
    } else {
        BenchState::instance().failures.push_back(
            {"replica/failover/audit", audit.error().str()});
    }

    for (const ReplicaSnapshot &snap :
         stack.gateway->replicaSnapshots()) {
        row.journaled += snap.counters.trainsJournaled;
        row.replayed += snap.counters.trainsReplayed;
        row.bootstrapBytes += snap.counters.bootstrapBytes;
    }
    row.gateway = stack.gateway->counters();
    row.reference =
        shardedReferenceStats(trace, hybridFactory(), kShards);
    row.statsEqual = row.stats == row.reference;
    row.completed = !aborted;

    stack.stop();
    for (auto &child : children)
        shutdownChild(child);
    for (unsigned i = 0; i < kReplicas; ++i)
        std::remove(socketPath("fo-r" + std::to_string(i)).c_str());
    std::remove(socketPath("fo-gw").c_str());

    expect(row.completed, "replica/failover/completed",
           "failover phase aborted early");
    expect(row.statsEqual, "replica/failover/stats-equal",
           "post-failover aggregate diverges from the unsharded "
           "reference (spec=" +
               std::to_string(row.stats.spec) + " vs " +
               std::to_string(row.reference.spec) + ")");
    expect(row.auditEqual, "replica/failover/audit-equal",
           "per-shard stats diverge across replicas after rejoin");
    expect(row.client.wrongReplies == 0,
           "replica/failover/wrong-replies",
           std::to_string(row.client.wrongReplies) +
               " replies paired with the wrong request");
    expect(row.counts.predictErrors == 0 &&
               row.counts.trainErrors == 0,
           "replica/failover/errors",
           std::to_string(row.counts.predictErrors) + " predicts / " +
               std::to_string(row.counts.trainErrors) +
               " trains surfaced to the client despite surviving "
               "replicas");
    expect(row.journaled > 0 && row.journaled == row.replayed,
           "replica/failover/journal",
           "journal did not fill and drain exactly (journaled=" +
               std::to_string(row.journaled) + ", replayed=" +
               std::to_string(row.replayed) + ")");
    return row;
}

/* ------------------------------------------------------------------ */
/* Harness plumbing.                                                  */
/* ------------------------------------------------------------------ */

struct ReplicaResults
{
    BalancedRow balanced;
    FailoverRow failover;
};

const ReplicaResults &
results()
{
    static const ReplicaResults cached = [] {
        std::signal(SIGPIPE, SIG_IGN);
        ReplicaResults out;
        const std::shared_ptr<const Trace> trace = benchTrace();
        out.balanced = runBalancedPhase(*trace);
        out.failover = runFailoverPhase(*trace);
        return out;
    }();
    return cached;
}

void
BM_Replica(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    state.counters["wrong_replies"] = static_cast<double>(
        results().balanced.client.wrongReplies +
        results().failover.client.wrongReplies);
}
BENCHMARK(BM_Replica)->Iterations(1)->Unit(benchmark::kMillisecond);

void
printResults()
{
    const ReplicaResults &res = results();

    Table balanced;
    balanced.row({"replicas", "shards", "loads", "pred_err",
                  "train_err", "preds_r0", "preds_r1", "preds_r2",
                  "train_sends", "cold_joins", "joins", "spec",
                  "spec_correct", "ref_spec", "ref_correct",
                  "stats_equal", "audit_equal"});
    balanced.newRow();
    balanced.cell(static_cast<std::uint64_t>(kReplicas));
    balanced.cell(static_cast<std::uint64_t>(kShards));
    balanced.cell(res.balanced.counts.loads);
    balanced.cell(res.balanced.counts.predictErrors);
    balanced.cell(res.balanced.counts.trainErrors);
    for (unsigned i = 0; i < kReplicas; ++i)
        balanced.cell(i < res.balanced.perReplicaPredicts.size()
                          ? res.balanced.perReplicaPredicts[i]
                          : 0);
    balanced.cell(res.balanced.gateway.trainSends);
    balanced.cell(res.balanced.coldJoins);
    balanced.cell(res.balanced.gateway.joins);
    balanced.cell(res.balanced.stats.spec);
    balanced.cell(res.balanced.stats.specCorrect);
    balanced.cell(res.balanced.reference.spec);
    balanced.cell(res.balanced.reference.specCorrect);
    balanced.cell(res.balanced.statsEqual ? "yes" : "NO");
    balanced.cell(res.balanced.auditEqual ? "yes" : "NO");
    printTable("Balanced replay: three replicas behind one endpoint "
               "must equal the unsharded reference bit for bit "
               "(byte-identical across same-seed runs)",
               balanced);

    Table failover;
    failover.row({"kills", "heal_victim", "journal_victim", "loads",
                  "pred_err", "train_err", "failovers", "joins",
                  "journaled", "replayed", "boot_bytes",
                  "wrong_replies", "spec", "ref_spec", "stats_equal",
                  "audit_equal", "completed"});
    failover.newRow();
    failover.cell(static_cast<std::uint64_t>(res.failover.kills));
    failover.cell(
        static_cast<std::uint64_t>(res.failover.healVictim));
    failover.cell(
        static_cast<std::uint64_t>(res.failover.journalVictim));
    failover.cell(res.failover.counts.loads);
    failover.cell(res.failover.counts.predictErrors);
    failover.cell(res.failover.counts.trainErrors);
    failover.cell(res.failover.gateway.predictFailovers);
    failover.cell(res.failover.gateway.joins);
    failover.cell(res.failover.journaled);
    failover.cell(res.failover.replayed);
    failover.cell(res.failover.bootstrapBytes);
    failover.cell(res.failover.client.wrongReplies);
    failover.cell(res.failover.stats.spec);
    failover.cell(res.failover.reference.spec);
    failover.cell(res.failover.statsEqual ? "yes" : "NO");
    failover.cell(res.failover.auditEqual ? "yes" : "NO");
    failover.cell(res.failover.completed ? "yes" : "NO");
    printTable("Seeded SIGKILL failover: heal round through "
               "healthPass, journal round through beginJoin/"
               "finishJoin; the client sees zero errors",
               failover);

    std::printf("\nexpected: stats_equal = yes and audit_equal = yes "
                "in both phases, wrong_replies = 0, zero client-"
                "visible errors, journaled == replayed > 0\n");
}

void
parseReplicaFlags(int &argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.compare(0, 15, "--replica-seed=") == 0) {
            replicaSeed = std::strtoull(arg.c_str() + 15, nullptr, 0);
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    // Child mode: no benchmark harness, just the replica loop.
    std::string childEndpoint;
    unsigned childShards = kShards;
    int readyFd = -1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.compare(0, 14, "--child-serve=") == 0)
            childEndpoint = arg.substr(14);
        else if (arg.compare(0, 9, "--shards=") == 0 &&
                 !childEndpoint.empty())
            childShards =
                static_cast<unsigned>(std::atol(arg.c_str() + 9));
        else if (arg.compare(0, 11, "--ready-fd=") == 0)
            readyFd = std::atoi(arg.c_str() + 11);
    }
    if (!childEndpoint.empty())
        return runChildServe(childEndpoint, childShards, readyFd);

    parseReplicaFlags(argc, argv);
    return clap::bench::benchMain("replica", argc, argv, printResults);
}
