/**
 * @file
 * Client bench for the network gateway (src/net/): an in-process
 * NetServer fronts a sharded PredictionService on a real UDS socket,
 * and M concurrent NetClients replay workload-composer traces over the
 * wire — every load is a Predict round trip followed by one Train, the
 * same immediate-update model as serve/crosscheck's replayTrace, just
 * through the full frame/CRC/deadline stack. The harness reports wire
 * throughput, per-predict round-trip latency percentiles, and the
 * client/server failure counters.
 *
 * With --fault-rate=F each client's connection is wrapped in a seeded
 * NetChaos layer (net/chaos.hh) injecting disconnects, torn frames,
 * stalls, and bit flips at rate F per frame — the smoke configuration
 * CI runs to prove a faulty wire costs retries, never wrong replies
 * (the wrong_replies column must be 0).
 *
 * Environment knobs: CLAP_NET_CLIENTS (default 4), CLAP_NET_SHARDS
 * (default 4), CLAP_TRACE_INSTS (suites.hh).
 *
 * Flags (besides the shared bench/sweep flags):
 *   --fault-rate=F   per-frame probability of each chaos fault class
 *                    (0 disables; chaos shares F across the classes)
 *   --net-seed=N     chaos schedule seed (default 0x7e57)
 *
 * Note on determinism: with multiple client threads the chaos
 * schedules interleave with the scheduler, so the counter tables are
 * run-dependent under --fault-rate (like bench_serve's throughput
 * table). bench_netchaos is the single-client, byte-identical
 * harness; this one measures the wire under load.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/bench_util.hh"
#include "net/chaos.hh"
#include "obs/metrics.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "serve/service.hh"
#include "workloads/composer.hh"

namespace
{

using namespace clap;
using namespace clap::bench;
using namespace clap::net;

double faultRate = 0.0;        ///< --fault-rate
std::uint64_t netSeed = 0x7e57; ///< --net-seed

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *text = std::getenv(name);
    if (text == nullptr || *text == '\0')
        return fallback;
    const long value = std::atol(text);
    return value < 1 ? fallback : static_cast<unsigned>(value);
}

std::string
socketPath()
{
    return "/tmp/clap_bench_net_" + std::to_string(getpid()) + ".sock";
}

/** Spread --fault-rate across the chaos classes: heavier on the
 *  recoverable ones (disconnect/tear/flip), lighter on stalls, which
 *  cost a whole request deadline each. */
NetChaosConfig
chaosConfig(std::uint64_t seed)
{
    NetChaosConfig config;
    config.seed = seed;
    config.disconnectRate = faultRate * 0.25;
    config.tearRate = faultRate * 0.25;
    config.stallRate = faultRate * 0.10;
    config.flipSendRate = faultRate * 0.25;
    config.replyDisconnectRate = faultRate * 0.05;
    config.replyStallRate = faultRate * 0.05;
    config.flipRecvRate = faultRate * 0.05;
    return config;
}

/** One client's replay outcome. */
struct ClientOutcome
{
    std::uint64_t loads = 0;
    std::uint64_t predictErrors = 0; ///< structured errors, incl. shed
    std::uint64_t trainErrors = 0;
    ClientCounters counters;
    std::vector<std::uint32_t> latenciesNs;
};

/** Replay @p trace through one NetClient over the wire, immediate-
 *  update model. Transport errors that survive the retry budget shed
 *  that load (counted), matching replayTrace's shed semantics. */
ClientOutcome
replayOverWire(const std::string &endpoint, const Trace &trace,
               NetChaos *chaos, bool collect_latencies)
{
    using Clock = std::chrono::steady_clock;

    ClientConfig config;
    config.endpoint = endpoint;
    config.maxAttempts = 6;
    if (chaos != nullptr)
        config.decorate = [chaos](std::unique_ptr<Stream> inner) {
            return chaos->wrap(std::move(inner));
        };

    NetClient client(config);
    ClientOutcome outcome;
    for (const auto &rec : trace.records()) {
        if (rec.isLoad()) {
            ++outcome.loads;
            const Clock::time_point begin =
                collect_latencies ? Clock::now() : Clock::time_point{};
            auto pred =
                client.predict(client.makeInfo(rec.pc, rec.immOffset));
            if (collect_latencies && pred) {
                const auto ns = std::chrono::duration_cast<
                                    std::chrono::nanoseconds>(
                                    Clock::now() - begin)
                                    .count();
                outcome.latenciesNs.push_back(
                    static_cast<std::uint32_t>(std::clamp<long long>(
                        ns, 0, UINT32_MAX)));
            }
            if (!pred) {
                ++outcome.predictErrors;
                continue; // shed this load: skip the matching train
            }
            auto trained = client.train(
                client.makeInfo(rec.pc, rec.immOffset), rec.effAddr,
                *pred);
            if (!trained)
                ++outcome.trainErrors;
        } else if (rec.isBranch()) {
            client.observeBranch(rec.taken);
        } else if (rec.cls == InstClass::Call) {
            client.observeCall(rec.pc);
        }
    }
    outcome.counters = client.counters();
    return outcome;
}

struct NetLoadResult
{
    unsigned clients = 0;
    unsigned shards = 0;
    double elapsedSec = 0.0;
    std::uint64_t loads = 0;
    std::uint64_t predictErrors = 0;
    std::uint64_t trainErrors = 0;
    double p50Us = 0.0;
    double p95Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    double meanUs = 0.0;
    ClientCounters clientTotals;
    NetChaosStats chaosTotals;
    ServerCounters server;
};

const NetLoadResult &
results()
{
    static const NetLoadResult cached = [] {
        NetLoadResult out;
        out.clients = envUnsigned("CLAP_NET_CLIENTS", 4);
        out.shards = envUnsigned("CLAP_NET_SHARDS", 4);
        while (!isPowerOf2(out.shards))
            --out.shards;

        std::vector<std::shared_ptr<const Trace>> traces;
        for (const char *suite : {"INT", "MM", "TPC", "NT"})
            traces.push_back(globalTraceStore().get(
                buildSuite(suite).front(), defaultTraceLength()));

        ServiceConfig serviceConfig;
        serviceConfig.shards = out.shards;
        serviceConfig.overload = OverloadPolicy::Block;
        PredictionService service(serviceConfig, hybridFactory());

        ServerConfig serverConfig;
        serverConfig.endpoint = "unix:" + socketPath();
        serverConfig.maxConnections = out.clients + 4;
        NetServer server(service, nullptr, serverConfig);
        if (auto started = server.start(); !started) {
            BenchState::instance().failures.push_back(
                {"net/load/start", started.error().str()});
            return out;
        }
        const std::string endpoint = server.boundEndpoint().str();

        // One chaos scheduler per client: schedules stay seeded even
        // though thread interleaving makes the run non-reproducible.
        std::vector<std::unique_ptr<NetChaos>> chaos;
        for (unsigned c = 0; c < out.clients; ++c)
            chaos.push_back(faultRate > 0.0
                                ? std::make_unique<NetChaos>(
                                      chaosConfig(netSeed + c))
                                : nullptr);

        std::vector<ClientOutcome> outcomes(out.clients);
        const auto begin = std::chrono::steady_clock::now();
        {
            std::vector<std::thread> threads;
            for (unsigned c = 0; c < out.clients; ++c) {
                threads.emplace_back([&, c] {
                    outcomes[c] = replayOverWire(
                        endpoint, *traces[c % traces.size()],
                        chaos[c].get(), /*collect_latencies=*/true);
                });
            }
            for (auto &thread : threads)
                thread.join();
        }
        const auto end = std::chrono::steady_clock::now();
        out.elapsedSec =
            std::chrono::duration<double>(end - begin).count();

        server.stop();
        service.stop();
        std::remove(socketPath().c_str());

        // Per-predict round-trip latencies aggregated through the
        // obs histogram (interpolated log2-bucket quantiles) — the
        // same estimator the live scrape and fleet watchdog report,
        // so bench and scrape tails are directly comparable.
        obs::HistogramSnapshot latency;
        for (unsigned c = 0; c < out.clients; ++c) {
            const ClientOutcome &res = outcomes[c];
            out.loads += res.loads;
            out.predictErrors += res.predictErrors;
            out.trainErrors += res.trainErrors;
            out.clientTotals.connects += res.counters.connects;
            out.clientTotals.connectFailures +=
                res.counters.connectFailures;
            out.clientTotals.retries += res.counters.retries;
            out.clientTotals.predictsOk += res.counters.predictsOk;
            out.clientTotals.trainsOk += res.counters.trainsOk;
            out.clientTotals.errorReplies += res.counters.errorReplies;
            out.clientTotals.transportErrors +=
                res.counters.transportErrors;
            out.clientTotals.corruptReplies +=
                res.counters.corruptReplies;
            out.clientTotals.wrongReplies += res.counters.wrongReplies;
            out.clientTotals.goAways += res.counters.goAways;
            for (std::uint32_t ns : res.latenciesNs)
                latency.addValue(ns);
            if (chaos[c]) {
                const NetChaosStats cs = chaos[c]->stats();
                out.chaosTotals.disconnects += cs.disconnects;
                out.chaosTotals.tears += cs.tears;
                out.chaosTotals.stalls += cs.stalls;
                out.chaosTotals.sendFlips += cs.sendFlips;
                out.chaosTotals.replyDisconnects += cs.replyDisconnects;
                out.chaosTotals.replyStalls += cs.replyStalls;
                out.chaosTotals.recvFlips += cs.recvFlips;
            }
        }
        out.p50Us = latency.p50() / 1000.0;
        out.p95Us = latency.p95() / 1000.0;
        out.p99Us = latency.p99() / 1000.0;
        out.p999Us = latency.quantile(0.999) / 1000.0;
        out.meanUs = latency.mean() / 1000.0;
        out.server = server.counters();

        // The invariant the gateway stack exists for: a faulty wire
        // may cost retries and shed loads, never a wrong reply.
        if (out.clientTotals.wrongReplies != 0) {
            BenchState::instance().failures.push_back(
                {"net/load/wrong-replies",
                 std::to_string(out.clientTotals.wrongReplies) +
                     " replies paired with the wrong request"});
        }
        return out;
    }();
    return cached;
}

void
BM_Net(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    const NetLoadResult &res = results();
    if (res.elapsedSec > 0.0) {
        state.counters["wire_preds_per_sec"] =
            static_cast<double>(res.clientTotals.predictsOk) /
            res.elapsedSec;
    }
}
BENCHMARK(BM_Net)->Iterations(1)->Unit(benchmark::kMillisecond);

void
printResults()
{
    const NetLoadResult &res = results();

    Table load;
    load.row({"clients", "shards", "loads", "preds/s", "mean_us",
              "p50_us", "p95_us", "p99_us", "p999_us", "pred_err",
              "train_err"});
    load.newRow();
    load.cell(static_cast<std::uint64_t>(res.clients));
    load.cell(static_cast<std::uint64_t>(res.shards));
    load.cell(res.loads);
    load.cell(res.elapsedSec > 0.0
                  ? static_cast<double>(res.clientTotals.predictsOk) /
                        res.elapsedSec
                  : 0.0,
              0);
    load.cell(res.meanUs, 2);
    load.cell(res.p50Us, 2);
    load.cell(res.p95Us, 2);
    load.cell(res.p99Us, 2);
    load.cell(res.p999Us, 2);
    load.cell(res.predictErrors);
    load.cell(res.trainErrors);
    printTable("Wire throughput / latency over UDS (wall-clock; "
               "run-dependent)",
               load);

    Table counters;
    counters.row({"connects", "retries", "transport_err", "error_reply",
                  "corrupt_reply", "wrong_replies", "go_aways",
                  "srv_corrupt", "srv_shed", "srv_rejected"});
    counters.newRow();
    counters.cell(res.clientTotals.connects);
    counters.cell(res.clientTotals.retries);
    counters.cell(res.clientTotals.transportErrors);
    counters.cell(res.clientTotals.errorReplies);
    counters.cell(res.clientTotals.corruptReplies);
    counters.cell(res.clientTotals.wrongReplies);
    counters.cell(res.clientTotals.goAways);
    counters.cell(res.server.corruptFrames);
    counters.cell(res.server.admitShed);
    counters.cell(res.server.admitRejected);
    printTable("Failure counters (fault-rate " +
                   std::to_string(faultRate) +
                   "; wrong_replies must be 0)",
               counters);

    if (faultRate > 0.0) {
        Table chaos;
        chaos.row({"disconnects", "tears", "stalls", "send_flips",
                   "reply_disc", "reply_stalls", "recv_flips"});
        chaos.newRow();
        chaos.cell(res.chaosTotals.disconnects);
        chaos.cell(res.chaosTotals.tears);
        chaos.cell(res.chaosTotals.stalls);
        chaos.cell(res.chaosTotals.sendFlips);
        chaos.cell(res.chaosTotals.replyDisconnects);
        chaos.cell(res.chaosTotals.replyStalls);
        chaos.cell(res.chaosTotals.recvFlips);
        printTable("Injected wire faults (net/chaos.hh)", chaos);
    }

    std::printf("\nexpected: wrong_replies = 0 at any fault rate — "
                "chaos costs retries and shed loads, never a reply "
                "paired with the wrong request\n");
}

void
parseNetFlags(int &argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto valueOf = [&arg](const char *prefix) -> const char * {
            const std::size_t len = std::strlen(prefix);
            return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len
                                                    : nullptr;
        };
        if (const char *value = valueOf("--fault-rate=")) {
            faultRate = std::strtod(value, nullptr);
            continue;
        }
        if (const char *value = valueOf("--net-seed=")) {
            netSeed = std::strtoull(value, nullptr, 0);
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    parseNetFlags(argc, argv);
    return clap::bench::benchMain("net", argc, argv, printResults);
}
