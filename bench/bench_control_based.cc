/**
 * @file
 * Section 3.6: control-based address predictors as an alternative to
 * CAP for control-dependent loads — a g-share scheme (load PC xor
 * global branch history indexing an address table) and the same
 * structure indexed by call-path history.
 *
 * Paper reference points (qualitative): the g-share scheme "gives
 * poor results mainly because the loads are not well correlated to
 * all the individual conditional branches"; path history over recent
 * call sites "gives better results" but still not enough to be "a
 * viable substitute" for the context-based predictor.
 */

#include "bench/bench_util.hh"

#include "core/control_predictor.hh"

namespace
{

using namespace clap;
using namespace clap::bench;

struct ControlResults
{
    std::vector<SuiteStats> gshare;
    std::vector<SuiteStats> path;
    std::vector<SuiteStats> cap;
};

const ControlResults &
results()
{
    static const ControlResults cached = [] {
        const std::size_t len = defaultTraceLength();
        ControlResults r;
        PredictorFactory gshare_factory = [] {
            ControlPredictorConfig config;
            config.usePathHistory = false;
            return std::make_unique<ControlAddressPredictor>(config);
        };
        PredictorFactory path_factory = [] {
            ControlPredictorConfig config;
            config.usePathHistory = true;
            return std::make_unique<ControlAddressPredictor>(config);
        };
        r.gshare = sweepPerSuite("gshare", gshare_factory, {}, len);
        r.path = sweepPerSuite("path", path_factory, {}, len);
        r.cap = sweepPerSuite("cap", capFactory(), {}, len);
        return r;
    }();
    return cached;
}

void
BM_ControlBased(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(&results());
    state.counters["gshare_correct"] =
        results().gshare.back().stats.correctOfAllLoads();
    state.counters["path_correct"] =
        results().path.back().stats.correctOfAllLoads();
    state.counters["cap_correct"] =
        results().cap.back().stats.correctOfAllLoads();
}
BENCHMARK(BM_ControlBased)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
printResults()
{
    const auto &r = results();
    Table table;
    table.row({"suite", "gshare_corr", "path_corr", "cap_corr"});
    for (std::size_t i = 0; i < r.cap.size(); ++i) {
        table.newRow();
        table.cell(r.cap[i].suite);
        table.percent(r.gshare[i].stats.correctOfAllLoads());
        table.percent(r.path[i].stats.correctOfAllLoads());
        table.percent(r.cap[i].stats.correctOfAllLoads());
    }
    printTable("Section 3.6: control-based address predictors vs CAP "
               "(correct of all loads)",
               table);
    std::printf("\npaper (qualitative): gshare-style poor, path "
                "history better, neither a viable substitute for the "
                "context-based predictor\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return clap::bench::benchMain("control_based", argc, argv,
                                  printResults);
}
